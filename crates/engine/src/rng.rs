//! Deterministic pseudo-random number generation.

/// SplitMix64 pseudo-random generator.
///
/// Small, fast, and fully deterministic across platforms — every run of
/// the simulator with the same seed produces bit-identical results. Not
/// cryptographically secure (and does not need to be).
///
/// # Example
///
/// ```
/// use cmpsim_engine::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.gen_range(10);
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire's multiply-shift rejection-free mapping is fine here:
        // a tiny modulo bias is irrelevant for workload synthesis, but we
        // use 128-bit multiply to avoid it anyway.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Geometric-ish "stack distance" sample: returns a value in
    /// `[0, n)` heavily biased toward 0 with decay parameter `theta`
    /// (larger theta = stronger locality). Used by the synthetic trace
    /// generators to model LRU temporal locality.
    pub fn gen_stack_distance(&mut self, n: u64, theta: f64) -> u64 {
        debug_assert!(n > 0);
        // Inverse-power sampling: d = floor(n * u^theta).
        let u = self.gen_f64();
        let d = (n as f64 * u.powf(theta)) as u64;
        d.min(n - 1)
    }

    /// Derives an independent generator (useful for per-thread streams).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0xA5A5_A5A5_5A5A_5A5A)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut r = SplitMix64::new(99);
        for _ in 0..10_000 {
            assert!(r.gen_range(17) < 17);
        }
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut r = SplitMix64::new(3);
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[r.gen_range(8) as usize] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = SplitMix64::new(5);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SplitMix64::new(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((27_000..33_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn stack_distance_biased_low() {
        let mut r = SplitMix64::new(13);
        let n = 1000;
        let samples: Vec<u64> = (0..50_000).map(|_| r.gen_stack_distance(n, 3.0)).collect();
        assert!(samples.iter().all(|&d| d < n));
        let low = samples.iter().filter(|&&d| d < n / 10).count();
        // With theta=3, u^3 < 0.1 whenever u < 0.464 -> ~46% of samples.
        assert!(low > samples.len() / 3, "low-distance fraction too small");
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = SplitMix64::new(21);
        let mut c = a.fork();
        // Streams should not be identical.
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn gen_range_zero_panics() {
        SplitMix64::new(0).gen_range(0);
    }
}
