//! Non-cryptographic hashing for simulator-internal maps.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3) is keyed and
//! DoS-resistant — properties the simulator's internal bookkeeping maps
//! (keyed by line addresses and small agent ids, never by external
//! input) pay for on every miss, castout, and hit. [`FxHasher`] is the
//! multiply-xor hasher used by rustc for the same kind of workload:
//! a couple of cycles per `u64` key, deterministic across runs and
//! platforms (no random state), which also keeps map iteration order
//! stable between identical runs.
//!
//! # Example
//!
//! ```
//! use cmpsim_engine::hash::FxHashMap;
//!
//! let mut m: FxHashMap<u64, u32> = FxHashMap::default();
//! m.insert(42, 1);
//! assert_eq!(m.get(&42), Some(&1));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc multiply-xor hasher: fast on short fixed-size keys.
///
/// Not collision-resistant against adversarial input — use only for
/// internal keys (addresses, ids), never for externally supplied data.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i * 0x9E37_79B9, "v");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&0));
        assert!(!m.contains_key(&1));
    }

    #[test]
    fn set_round_trips() {
        let mut s: FxHashSet<(u8, u64)> = FxHashSet::default();
        assert!(s.insert((3, 77)));
        assert!(!s.insert((3, 77)));
        assert!(s.remove(&(3, 77)));
        assert!(s.is_empty());
    }

    #[test]
    fn hashes_are_deterministic() {
        let h = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn byte_writes_match_word_writes() {
        // `write` is only exercised via derived Hash impls on compound
        // keys; sanity-check that it mixes all input bytes.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a.finish(), b.finish());
    }
}
