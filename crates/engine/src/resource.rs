//! Contention-modelling resources with busy-until semantics.
//!
//! These primitives are only correct when driven in non-decreasing time
//! order, which the [`EventQueue`](crate::EventQueue) guarantees.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Cycle;

/// A single-ported unit that serves requests one at a time, FIFO.
///
/// Typical uses: a cache tag port, a directory pipeline stage, a bus
/// arbitration slot. A request arriving at `now` starts service at
/// `max(now, busy_until)` and occupies the server for its service time.
///
/// # Example
///
/// ```
/// use cmpsim_engine::FifoServer;
///
/// let mut tag_port = FifoServer::new(2);
/// assert_eq!(tag_port.reserve(10), 12); // idle: starts immediately
/// assert_eq!(tag_port.reserve(10), 14); // queues behind the first
/// assert_eq!(tag_port.reserve(20), 22); // idle again by cycle 20
/// ```
#[derive(Debug, Clone)]
pub struct FifoServer {
    service: Cycle,
    busy_until: Cycle,
    /// Total cycles the server spent occupied (for utilization stats).
    busy_cycles: Cycle,
    served: u64,
}

impl FifoServer {
    /// Creates a server with a fixed per-request service time.
    pub fn new(service: Cycle) -> Self {
        FifoServer {
            service,
            busy_until: 0,
            busy_cycles: 0,
            served: 0,
        }
    }

    /// Reserves the server for one request arriving at `now`, using the
    /// default service time. Returns the completion time.
    #[inline]
    pub fn reserve(&mut self, now: Cycle) -> Cycle {
        self.reserve_for(now, self.service)
    }

    /// Reserves the server for a request with an explicit service time.
    /// Returns the completion time.
    #[inline]
    pub fn reserve_for(&mut self, now: Cycle, service: Cycle) -> Cycle {
        self.reserve_for_timed(now, service).1
    }

    /// Like [`FifoServer::reserve`], but also returns the queueing delay:
    /// `(wait, completion)` where service began at `now + wait`. Used by
    /// the span tracer to split latency into queue-wait vs. service.
    #[inline]
    pub fn reserve_timed(&mut self, now: Cycle) -> (Cycle, Cycle) {
        self.reserve_for_timed(now, self.service)
    }

    /// Like [`FifoServer::reserve_for`], but also returns the queueing
    /// delay as `(wait, completion)`.
    #[inline]
    pub fn reserve_for_timed(&mut self, now: Cycle, service: Cycle) -> (Cycle, Cycle) {
        let start = self.busy_until.max(now);
        self.busy_until = start + service;
        self.busy_cycles += service;
        self.served += 1;
        (start - now, self.busy_until)
    }

    /// The earliest time a new request arriving at `now` would complete,
    /// without reserving.
    pub fn completion_if_reserved(&self, now: Cycle) -> Cycle {
        self.busy_until.max(now) + self.service
    }

    /// The time until which the server is currently booked.
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }

    /// Total cycles of booked service time.
    pub fn busy_cycles(&self) -> Cycle {
        self.busy_cycles
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }
}

/// A `k`-lane bandwidth resource.
///
/// Models an interconnect with `k` independent transfer slots (e.g. a ring
/// whose aggregate bandwidth admits `k` concurrent line transfers). A
/// transfer reserves the earliest-free lane.
///
/// # Example
///
/// ```
/// use cmpsim_engine::Channel;
///
/// let mut data_ring = Channel::new(2, 8); // 2 lanes, 8-cycle occupancy
/// assert_eq!(data_ring.reserve(0), 8);
/// assert_eq!(data_ring.reserve(0), 8);  // second lane
/// assert_eq!(data_ring.reserve(0), 16); // queues
/// ```
#[derive(Debug, Clone)]
pub struct Channel {
    lanes: Vec<Cycle>,
    occupancy: Cycle,
    busy_cycles: Cycle,
    served: u64,
}

impl Channel {
    /// Creates a channel with `lanes` parallel slots and a default
    /// per-transfer occupancy.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(lanes: usize, occupancy: Cycle) -> Self {
        assert!(lanes > 0, "channel must have at least one lane");
        Channel {
            lanes: vec![0; lanes],
            occupancy,
            busy_cycles: 0,
            served: 0,
        }
    }

    /// Reserves a lane for a transfer arriving at `now` with the default
    /// occupancy. Returns the completion time.
    #[inline]
    pub fn reserve(&mut self, now: Cycle) -> Cycle {
        self.reserve_for(now, self.occupancy)
    }

    /// Reserves a lane with an explicit occupancy. Returns completion time.
    #[inline]
    pub fn reserve_for(&mut self, now: Cycle, occupancy: Cycle) -> Cycle {
        self.reserve_for_timed(now, occupancy).1
    }

    /// Like [`Channel::reserve`], but also returns the queueing delay:
    /// `(wait, completion)` where the transfer began at `now + wait`.
    #[inline]
    pub fn reserve_timed(&mut self, now: Cycle) -> (Cycle, Cycle) {
        self.reserve_for_timed(now, self.occupancy)
    }

    /// Like [`Channel::reserve_for`], but also returns the queueing delay
    /// as `(wait, completion)`.
    #[inline]
    pub fn reserve_for_timed(&mut self, now: Cycle, occupancy: Cycle) -> (Cycle, Cycle) {
        // Earliest-free lane; ties broken by index for determinism.
        let (idx, &free) = self
            .lanes
            .iter()
            .enumerate()
            .min_by_key(|&(i, &t)| (t, i))
            .expect("at least one lane");
        let start = free.max(now);
        self.lanes[idx] = start + occupancy;
        self.busy_cycles += occupancy;
        self.served += 1;
        (start - now, self.lanes[idx])
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Total booked occupancy across all lanes.
    pub fn busy_cycles(&self) -> Cycle {
        self.busy_cycles
    }

    /// Number of transfers served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Would a transfer arriving at `now` start immediately (no queueing)?
    pub fn idle_lane_at(&self, now: Cycle) -> bool {
        self.lanes.iter().any(|&t| t <= now)
    }
}

/// A finite pool of slots that are held for a time interval.
///
/// Models a finite queue (e.g. the L3 incoming-request queue): a slot is
/// acquired at `now` and released at a caller-specified time. When no slot
/// is free the acquire fails — in the simulator that failure surfaces as a
/// *Retry* snoop response.
///
/// # Example
///
/// ```
/// use cmpsim_engine::SlotPool;
///
/// let mut q = SlotPool::new(1);
/// assert!(q.try_acquire(0, 100));  // held until cycle 100
/// assert!(!q.try_acquire(50, 60)); // full -> retry
/// assert!(q.try_acquire(100, 120));
/// ```
#[derive(Debug, Clone)]
pub struct SlotPool {
    capacity: usize,
    releases: BinaryHeap<Reverse<Cycle>>,
    acquired: u64,
    rejected: u64,
    high_water: usize,
}

impl SlotPool {
    /// Creates a pool with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "slot pool must have at least one slot");
        SlotPool {
            capacity,
            releases: BinaryHeap::new(),
            acquired: 0,
            rejected: 0,
            high_water: 0,
        }
    }

    /// Attempts to acquire a slot at `now`, holding it until `release_at`.
    ///
    /// Returns `false` (and records a rejection) when all slots are held.
    pub fn try_acquire(&mut self, now: Cycle, release_at: Cycle) -> bool {
        self.expire(now);
        if self.releases.len() < self.capacity {
            self.releases.push(Reverse(release_at.max(now)));
            self.acquired += 1;
            self.high_water = self.high_water.max(self.releases.len());
            true
        } else {
            self.rejected += 1;
            false
        }
    }

    /// Number of slots in use at time `now`.
    #[inline]
    pub fn in_use(&mut self, now: Cycle) -> usize {
        self.expire(now);
        self.releases.len()
    }

    /// Pool capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Successful acquisitions so far.
    pub fn acquired(&self) -> u64 {
        self.acquired
    }

    /// Failed acquisitions so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Peak number of slots held at once (occupancy gauge, sampled on
    /// every successful acquire).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    fn expire(&mut self, now: Cycle) {
        while matches!(self.releases.peek(), Some(&Reverse(t)) if t <= now) {
            self.releases.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_server_queues() {
        let mut s = FifoServer::new(5);
        assert_eq!(s.reserve(0), 5);
        assert_eq!(s.reserve(0), 10);
        assert_eq!(s.reserve(3), 15);
        assert_eq!(s.reserve(100), 105);
        assert_eq!(s.served(), 4);
        assert_eq!(s.busy_cycles(), 20);
    }

    #[test]
    fn fifo_server_explicit_service() {
        let mut s = FifoServer::new(5);
        assert_eq!(s.reserve_for(0, 1), 1);
        assert_eq!(s.reserve_for(0, 9), 10);
        assert_eq!(s.completion_if_reserved(0), 15);
        // completion_if_reserved does not book.
        assert_eq!(s.busy_until(), 10);
    }

    #[test]
    fn channel_uses_all_lanes() {
        let mut c = Channel::new(3, 4);
        assert_eq!(c.reserve(0), 4);
        assert_eq!(c.reserve(0), 4);
        assert_eq!(c.reserve(0), 4);
        assert_eq!(c.reserve(0), 8); // all lanes busy, queue
        assert!(c.idle_lane_at(4));
        assert!(!c.idle_lane_at(3));
        assert_eq!(c.lanes(), 3);
        assert_eq!(c.served(), 4);
    }

    #[test]
    fn channel_picks_earliest_lane() {
        let mut c = Channel::new(2, 10);
        c.reserve(0); // lane0 -> 10
        c.reserve_for(0, 2); // lane1 -> 2
                             // Next transfer at t=3 should use lane1 (free at 2), not lane0.
        assert_eq!(c.reserve(3), 13);
    }

    #[test]
    fn timed_variants_expose_queueing_delay() {
        let mut s = FifoServer::new(5);
        assert_eq!(s.reserve_timed(0), (0, 5)); // idle: no wait
        assert_eq!(s.reserve_timed(2), (3, 10)); // queued behind the first
        assert_eq!(s.reserve_for_timed(10, 3), (0, 13));
        // The untimed path books identically: state continues seamlessly.
        assert_eq!(s.reserve(13), 18);

        let mut c = Channel::new(2, 4);
        assert_eq!(c.reserve_timed(0), (0, 4));
        assert_eq!(c.reserve_timed(0), (0, 4)); // second lane, still no wait
        assert_eq!(c.reserve_timed(1), (3, 8)); // both lanes busy until 4
        assert_eq!(c.reserve_for_timed(8, 2), (0, 10));
    }

    #[test]
    fn slot_pool_high_water_tracks_peak() {
        let mut p = SlotPool::new(3);
        assert_eq!(p.high_water(), 0);
        p.try_acquire(0, 10);
        p.try_acquire(0, 10);
        assert_eq!(p.high_water(), 2);
        // Slots expire at 10; occupancy drops, peak stays.
        p.try_acquire(20, 30);
        assert_eq!(p.in_use(20), 1);
        assert_eq!(p.high_water(), 2);
    }

    #[test]
    fn slot_pool_rejects_when_full() {
        let mut p = SlotPool::new(2);
        assert!(p.try_acquire(0, 10));
        assert!(p.try_acquire(0, 20));
        assert!(!p.try_acquire(5, 30));
        assert_eq!(p.rejected(), 1);
        // One slot frees at 10.
        assert!(p.try_acquire(10, 40));
        assert_eq!(p.in_use(10), 2);
        assert_eq!(p.in_use(25), 1);
        assert_eq!(p.in_use(40), 0);
        assert_eq!(p.acquired(), 3);
    }

    #[test]
    fn slot_pool_release_never_before_now() {
        let mut p = SlotPool::new(1);
        // release_at in the past is clamped to now, so the slot frees
        // immediately at the next query.
        assert!(p.try_acquire(10, 5));
        assert!(p.try_acquire(11, 20));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn slot_pool_zero_capacity_panics() {
        let _ = SlotPool::new(0);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn channel_zero_lanes_panics() {
        let _ = Channel::new(0, 1);
    }
}
