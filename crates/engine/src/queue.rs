//! A deterministic event queue with stable same-time ordering.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Cycle;

/// A priority queue of timestamped events.
///
/// Events pop in non-decreasing time order; events pushed at the same time
/// pop in push order (FIFO), which makes simulations fully deterministic
/// regardless of heap internals.
///
/// # Example
///
/// ```
/// use cmpsim_engine::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(5, "b");
/// q.push(3, "a");
/// q.push(5, "c");
/// assert_eq!(q.pop(), Some((3, "a")));
/// assert_eq!(q.pop(), Some((5, "b")));
/// assert_eq!(q.pop(), Some((5, "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
    last_popped: Cycle,
    high_water: usize,
}

#[derive(Debug)]
struct Entry<T> {
    time: Cycle,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            last_popped: 0,
            high_water: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
            last_popped: 0,
            high_water: 0,
        }
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last popped time: scheduling
    /// into the past would silently corrupt resource busy-until state.
    pub fn push(&mut self, time: Cycle, payload: T) {
        assert!(
            time >= self.last_popped,
            "event scheduled in the past: {} < {}",
            time,
            self.last_popped
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, payload }));
        self.high_water = self.high_water.max(self.heap.len());
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        let Reverse(e) = self.heap.pop()?;
        self.last_popped = e.time;
        Some((e.time, e.payload))
    }

    /// Returns the time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The timestamp of the most recently popped event (0 before any pop).
    ///
    /// This is the queue's notion of "now"; pushes earlier than this panic.
    pub fn now(&self) -> Cycle {
        self.last_popped
    }

    /// Peak number of pending events observed (occupancy gauge, sampled
    /// on every push).
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, 3);
        q.push(10, 1);
        q.push(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(4, "x");
        assert_eq!(q.peek_time(), Some(4));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0);
        q.push(9, ());
        q.pop();
        assert_eq!(q.now(), 9);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn push_into_past_panics() {
        let mut q = EventQueue::new();
        q.push(10, ());
        q.pop();
        q.push(5, ());
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let mut q = EventQueue::new();
        assert_eq!(q.high_water(), 0);
        q.push(1, ());
        q.push(2, ());
        q.push(3, ());
        q.pop();
        q.pop();
        q.push(4, ());
        assert_eq!(q.high_water(), 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn push_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.push(10, 1);
        q.pop();
        q.push(10, 2);
        assert_eq!(q.pop(), Some((10, 2)));
    }
}
