//! A deterministic event queue with stable same-time ordering.
//!
//! The implementation is a two-level calendar queue tuned for the
//! simulator's access pattern (pushes cluster within a few hundred
//! cycles of "now"): a ring of per-cycle FIFO buckets absorbs the near
//! future at O(1) push/pop, and a far-future overflow heap catches the
//! rare long-delay event. `legacy::HeapEventQueue` (cfg-gated on tests
//! and the `legacy-heap` feature) keeps the original
//! binary-heap implementation as a differential oracle for tests.

use std::collections::VecDeque;

use crate::Cycle;

/// Number of per-cycle buckets in the near-future ring (power of two).
///
/// Events scheduled less than this many cycles past the ring's current
/// window base go straight into their cycle's bucket; later events park
/// in the overflow heap until the window advances over them. The
/// simulator's longest single hop (memory access + link transfer) is a
/// few hundred cycles, so 1024 keeps the overflow heap essentially
/// empty in practice.
const NUM_BUCKETS: usize = 1024;
const BUCKET_MASK: usize = NUM_BUCKETS - 1;

/// A priority queue of timestamped events.
///
/// Events pop in non-decreasing time order; events pushed at the same time
/// pop in push order (FIFO), which makes simulations fully deterministic
/// regardless of queue internals.
///
/// # Example
///
/// ```
/// use cmpsim_engine::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(5, "b");
/// q.push(3, "a");
/// q.push(5, "c");
/// assert_eq!(q.pop(), Some((3, "a")));
/// assert_eq!(q.pop(), Some((5, "b")));
/// assert_eq!(q.pop(), Some((5, "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    /// Near-future ring: bucket `t & BUCKET_MASK` holds the events of
    /// cycle `t` for every `t` in `[horizon - NUM_BUCKETS, horizon)`.
    /// Within a bucket, `VecDeque` push/pop order *is* FIFO order, so no
    /// per-event sequence number is stored (or allocated) on this path.
    /// The timestamp is not stored either: inside the window a bucket
    /// maps to exactly one cycle, so the pop cursor *is* the event time.
    buckets: Vec<VecDeque<T>>,
    /// Events in the ring.
    ring_len: usize,
    /// Scan position: no ring event is earlier than this. Monotonic.
    cursor: Cycle,
    /// Exclusive upper bound of the ring window; overflow events are at
    /// or past it. Advances only when the ring drains (lazy rebase).
    horizon: Cycle,
    /// Far-future events, ordered by `(time, seq)` so same-time events
    /// migrate into the ring in push order.
    overflow: std::collections::BinaryHeap<std::cmp::Reverse<OverflowEntry<T>>>,
    /// Push tiebreaker for overflow entries only.
    seq: u64,
    len: usize,
    last_popped: Cycle,
    high_water: usize,
    popped: u64,
}

#[derive(Debug)]
struct OverflowEntry<T> {
    time: Cycle,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for OverflowEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for OverflowEntry<T> {}
impl<T> PartialOrd for OverflowEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for OverflowEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..NUM_BUCKETS).map(|_| VecDeque::new()).collect(),
            ring_len: 0,
            cursor: 0,
            horizon: NUM_BUCKETS as Cycle,
            overflow: std::collections::BinaryHeap::new(),
            seq: 0,
            len: 0,
            last_popped: 0,
            high_water: 0,
            popped: 0,
        }
    }

    /// Creates an empty queue. The calendar ring is fixed-size; `_cap`
    /// is accepted for API compatibility with the old binary heap.
    pub fn with_capacity(_cap: usize) -> Self {
        Self::new()
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `time` is earlier than the last popped
    /// time: scheduling into the past would silently corrupt resource
    /// busy-until state. Release builds skip the check (the simulator's
    /// tests run with it on).
    #[inline]
    pub fn push(&mut self, time: Cycle, payload: T) {
        debug_assert!(
            time >= self.last_popped,
            "event scheduled in the past: {} < {}",
            time,
            self.last_popped
        );
        if time < self.horizon {
            self.buckets[(time as usize) & BUCKET_MASK].push_back(payload);
            self.ring_len += 1;
        } else {
            let seq = self.seq;
            self.seq += 1;
            self.overflow
                .push(std::cmp::Reverse(OverflowEntry { time, seq, payload }));
        }
        self.len += 1;
        self.high_water = self.high_water.max(self.len);
    }

    /// Removes and returns the earliest event, or `None` when empty.
    #[inline]
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        if self.len == 0 {
            return None;
        }
        if self.ring_len == 0 {
            self.rebase();
        }
        // Scan forward from the cursor to the next occupied bucket. The
        // cursor is globally monotonic (rebases only jump it forward),
        // so the total scan work over a run is bounded by the total
        // virtual-time advance, not events × window.
        loop {
            let bucket = &mut self.buckets[(self.cursor as usize) & BUCKET_MASK];
            if let Some(payload) = bucket.pop_front() {
                let t = self.cursor;
                self.ring_len -= 1;
                self.len -= 1;
                self.last_popped = t;
                self.popped += 1;
                return Some((t, payload));
            }
            self.cursor += 1;
            debug_assert!(self.cursor < self.horizon, "ring events lost");
        }
    }

    /// Advances the ring window to the earliest overflow event and
    /// migrates every overflow event inside the new window into its
    /// bucket (in `(time, seq)` order, preserving same-time FIFO).
    #[cold]
    fn rebase(&mut self) {
        let t0 = self.overflow.peek().expect("len>0, ring empty").0.time;
        self.cursor = t0;
        self.horizon = t0 + NUM_BUCKETS as Cycle;
        while let Some(e) = self.overflow.peek() {
            if e.0.time >= self.horizon {
                break;
            }
            let std::cmp::Reverse(e) = self.overflow.pop().expect("peeked");
            self.buckets[(e.time as usize) & BUCKET_MASK].push_back(e.payload);
            self.ring_len += 1;
        }
    }

    /// Returns the time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<Cycle> {
        if self.len == 0 {
            return None;
        }
        if self.ring_len == 0 {
            return self.overflow.peek().map(|e| e.0.time);
        }
        (self.cursor..self.horizon).find(|&t| !self.buckets[(t as usize) & BUCKET_MASK].is_empty())
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The timestamp of the most recently popped event (0 before any pop).
    ///
    /// This is the queue's notion of "now"; pushes earlier than this are
    /// a bug (checked in debug builds).
    #[inline]
    pub fn now(&self) -> Cycle {
        self.last_popped
    }

    /// Peak number of pending events observed (occupancy gauge, sampled
    /// on every push).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Pending events in the near-future bucket ring (occupancy gauge
    /// for the host profiler; `len() - overflow_len()`).
    pub fn ring_len(&self) -> usize {
        self.ring_len
    }

    /// Pending events parked in the far-future overflow heap.
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// Total events popped over the queue's lifetime (the denominator
    /// of the bench harness's events/sec figure).
    pub fn popped(&self) -> u64 {
        self.popped
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// The original binary-heap event queue, kept as a differential oracle:
/// property tests drive it and [`EventQueue`] with identical schedules
/// and assert identical pop sequences. Compiled only for tests or under
/// the `legacy-heap` feature.
#[cfg(any(test, feature = "legacy-heap"))]
pub mod legacy {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    use crate::Cycle;

    /// The pre-calendar [`EventQueue`](super::EventQueue): a binary
    /// heap over `(time, push sequence)`.
    #[derive(Debug)]
    pub struct HeapEventQueue<T> {
        heap: BinaryHeap<Reverse<Entry<T>>>,
        seq: u64,
        last_popped: Cycle,
        high_water: usize,
    }

    #[derive(Debug)]
    struct Entry<T> {
        time: Cycle,
        seq: u64,
        payload: T,
    }

    impl<T> PartialEq for Entry<T> {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }
    impl<T> Eq for Entry<T> {}
    impl<T> PartialOrd for Entry<T> {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<T> Ord for Entry<T> {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (self.time, self.seq).cmp(&(other.time, other.seq))
        }
    }

    impl<T> HeapEventQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            HeapEventQueue {
                heap: BinaryHeap::new(),
                seq: 0,
                last_popped: 0,
                high_water: 0,
            }
        }

        /// Schedules `payload` at absolute time `time`.
        pub fn push(&mut self, time: Cycle, payload: T) {
            debug_assert!(time >= self.last_popped, "event scheduled in the past");
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(Reverse(Entry { time, seq, payload }));
            self.high_water = self.high_water.max(self.heap.len());
        }

        /// Removes and returns the earliest event, or `None` when empty.
        pub fn pop(&mut self) -> Option<(Cycle, T)> {
            let Reverse(e) = self.heap.pop()?;
            self.last_popped = e.time;
            Some((e.time, e.payload))
        }

        /// Returns the earliest pending time without removing it.
        pub fn peek_time(&self) -> Option<Cycle> {
            self.heap.peek().map(|Reverse(e)| e.time)
        }

        /// Number of pending events.
        pub fn len(&self) -> usize {
            self.heap.len()
        }

        /// `true` when no events are pending.
        pub fn is_empty(&self) -> bool {
            self.heap.is_empty()
        }

        /// The timestamp of the most recently popped event.
        pub fn now(&self) -> Cycle {
            self.last_popped
        }

        /// Peak number of pending events observed.
        pub fn high_water(&self) -> usize {
            self.high_water
        }
    }

    impl<T> Default for HeapEventQueue<T> {
        fn default() -> Self {
            Self::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::legacy::HeapEventQueue;
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, 3);
        q.push(10, 1);
        q.push(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(4, "x");
        assert_eq!(q.peek_time(), Some(4));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn ring_and_overflow_occupancy_gauges() {
        let mut q = EventQueue::new();
        q.push(1, ()); // near future: bucket ring
        q.push(2, ());
        q.push(1_000_000, ()); // far future: overflow heap
        assert_eq!(q.ring_len(), 2);
        assert_eq!(q.overflow_len(), 1);
        assert_eq!(q.len(), q.ring_len() + q.overflow_len());
        q.pop();
        q.pop();
        // Popping across the horizon migrates the overflow event in.
        assert_eq!(q.pop(), Some((1_000_000, ())));
        assert_eq!(q.ring_len(), 0);
        assert_eq!(q.overflow_len(), 0);
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0);
        q.push(9, ());
        q.pop();
        assert_eq!(q.now(), 9);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn push_into_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push(10, ());
        q.pop();
        q.push(5, ());
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let mut q = EventQueue::new();
        assert_eq!(q.high_water(), 0);
        q.push(1, ());
        q.push(2, ());
        q.push(3, ());
        q.pop();
        q.pop();
        q.push(4, ());
        assert_eq!(q.high_water(), 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn push_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.push(10, 1);
        q.pop();
        q.push(10, 2);
        assert_eq!(q.pop(), Some((10, 2)));
    }

    #[test]
    fn far_future_events_cross_the_overflow() {
        let mut q = EventQueue::new();
        // Far past the ring window, interleaved with near events.
        q.push(1_000_000, "far-b");
        q.push(3, "near");
        q.push(1_000_000, "far-c");
        q.push(999_999, "far-a");
        assert_eq!(q.pop(), Some((3, "near")));
        // Rebase jumps the window to the overflow minimum.
        assert_eq!(q.peek_time(), Some(999_999));
        assert_eq!(q.pop(), Some((999_999, "far-a")));
        assert_eq!(q.pop(), Some((1_000_000, "far-b")));
        assert_eq!(q.pop(), Some((1_000_000, "far-c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_then_ring_push_at_same_time_keeps_fifo() {
        let mut q = EventQueue::new();
        let t = 5_000; // beyond the initial window: goes to overflow
        q.push(t, 0);
        q.push(1, 99);
        assert_eq!(q.pop(), Some((1, 99)));
        assert_eq!(q.pop(), Some((t, 0))); // rebases; window now covers t
        q.push(t, 1); // same cycle, now within the ring
        q.push(t, 2);
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 2)));
    }

    #[test]
    fn popped_counts_lifetime_pops() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.push(i, ());
        }
        while q.pop().is_some() {}
        q.push(10, ());
        q.pop();
        assert_eq!(q.popped(), 6);
    }

    /// Differential property test: random interleaved push/pop schedules
    /// must pop in identical order from the calendar queue and the
    /// legacy heap oracle. Seeded `SplitMix64` keeps it reproducible.
    #[test]
    fn differential_vs_legacy_heap() {
        for seed in 0..8u64 {
            let mut rng = SplitMix64::new(0xD1FF ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut cal: EventQueue<u64> = EventQueue::new();
            let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
            let mut now: Cycle = 0;
            let mut tag: u64 = 0;
            for step in 0..20_000u64 {
                if rng.gen_range(100) < 60 || cal.is_empty() {
                    // Push: mostly near-future, occasionally far past the
                    // ring window to exercise overflow and rebase.
                    let delta = match rng.gen_range(20) {
                        0 => rng.gen_range(100_000),                       // far future
                        1..=4 => NUM_BUCKETS as u64 + rng.gen_range(4096), // straddle
                        _ => rng.gen_range(64),                            // near
                    };
                    // Bursts of same-time events stress FIFO ordering.
                    let burst = 1 + rng.gen_range(4);
                    for _ in 0..burst {
                        cal.push(now + delta, tag);
                        heap.push(now + delta, tag);
                        tag += 1;
                    }
                } else {
                    let a = cal.pop();
                    let b = heap.pop();
                    assert_eq!(a, b, "divergence at step {step} (seed {seed})");
                    if let Some((t, _)) = a {
                        now = t;
                    }
                }
                assert_eq!(cal.len(), heap.len());
                assert_eq!(cal.peek_time(), heap.peek_time());
            }
            // Drain both completely.
            loop {
                let a = cal.pop();
                let b = heap.pop();
                assert_eq!(a, b, "drain divergence (seed {seed})");
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
