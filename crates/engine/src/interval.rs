//! Interval sampling: cumulative counters snapshotted every N cycles
//! into per-window deltas. Re-exported through
//! [`telemetry`](crate::telemetry), its historical home, alongside the
//! event-trace machinery it feeds.

use crate::Cycle;

/// Default interval-sampler period: the paper's 1M-cycle retry window.
pub const DEFAULT_INTERVAL: Cycle = 1_000_000;

/// One closed sampler window: per-interval deltas of every counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalRecord {
    /// Window start cycle (inclusive).
    pub start: Cycle,
    /// Window end cycle (exclusive). The final record of a run may close
    /// early (`end - start < period`) or late (quiet periods merge).
    pub end: Cycle,
    /// `(name, delta)` pairs in the order the caller supplies them.
    pub counters: Vec<(&'static str, u64)>,
}

/// Snapshots cumulative counters every `period` cycles into per-interval
/// deltas.
///
/// The driver calls [`IntervalSampler::due`] on its event loop (one
/// comparison) and [`IntervalSampler::sample`] only when a boundary has
/// passed; [`IntervalSampler::finish`] closes the trailing partial window
/// so short runs still produce a record.
///
/// # Example
///
/// ```
/// use cmpsim_engine::telemetry::IntervalSampler;
///
/// let mut s = IntervalSampler::new(100);
/// assert!(!s.due(99));
/// assert!(s.due(100));
/// s.sample(105, &[("misses", 7)]);
/// s.finish(130, &[("misses", 9)]);
/// let r = s.records();
/// assert_eq!((r[0].start, r[0].end), (0, 100));
/// assert_eq!(r[0].counters, vec![("misses", 7)]);
/// assert_eq!((r[1].start, r[1].end), (100, 130));
/// assert_eq!(r[1].counters, vec![("misses", 2)]);
/// ```
#[derive(Debug, Clone)]
pub struct IntervalSampler {
    period: Cycle,
    window_start: Cycle,
    prev: Vec<(&'static str, u64)>,
    records: Vec<IntervalRecord>,
}

impl IntervalSampler {
    /// Creates a sampler with the given period (cycles per window).
    ///
    /// # Panics
    ///
    /// Panics if `period` is 0.
    pub fn new(period: Cycle) -> Self {
        assert!(period > 0, "interval period must be positive");
        IntervalSampler {
            period,
            window_start: 0,
            prev: Vec::new(),
            records: Vec::new(),
        }
    }

    /// The sampling period in cycles.
    pub fn period(&self) -> Cycle {
        self.period
    }

    /// Whether `now` has passed the current window's end (cheap hot-path
    /// check; call [`IntervalSampler::sample`] when true).
    #[inline]
    pub fn due(&self, now: Cycle) -> bool {
        now >= self.window_start + self.period
    }

    /// Closes the window(s) the clock has passed, recording the deltas of
    /// `cumulative` against the previous snapshot. In an event-driven
    /// simulation the clock can jump across several boundaries at once; a
    /// single record then covers the whole quiet span.
    pub fn sample(&mut self, now: Cycle, cumulative: &[(&'static str, u64)]) {
        if !self.due(now) {
            return;
        }
        let windows_passed = (now - self.window_start) / self.period;
        let end = self.window_start + windows_passed * self.period;
        self.close_window(end, cumulative);
    }

    /// Closes the trailing partial window at end-of-run (no-op when the
    /// run ended exactly on a boundary and nothing happened since).
    pub fn finish(&mut self, now: Cycle, cumulative: &[(&'static str, u64)]) {
        if now > self.window_start || self.records.is_empty() {
            self.close_window(now.max(self.window_start), cumulative);
        }
    }

    fn close_window(&mut self, end: Cycle, cumulative: &[(&'static str, u64)]) {
        let counters = cumulative
            .iter()
            .enumerate()
            .map(|(i, &(name, v))| {
                let before = self.prev.get(i).map_or(0, |&(_, p)| p);
                (name, v.saturating_sub(before))
            })
            .collect();
        self.records.push(IntervalRecord {
            start: self.window_start,
            end,
            counters,
        });
        self.window_start = end;
        self.prev = cumulative.to_vec();
    }

    /// The closed windows so far.
    pub fn records(&self) -> &[IntervalRecord] {
        &self.records
    }

    /// Consumes the sampler, returning its records.
    pub fn into_records(self) -> Vec<IntervalRecord> {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_run_shorter_than_one_interval() {
        let mut s = IntervalSampler::new(1_000);
        // No boundary crossed during the run.
        assert!(!s.due(400));
        s.finish(400, &[("misses", 12)]);
        assert_eq!(s.records().len(), 1);
        assert_eq!((s.records()[0].start, s.records()[0].end), (0, 400));
        assert_eq!(s.records()[0].counters, vec![("misses", 12)]);
    }

    #[test]
    fn sampler_run_ending_mid_interval() {
        let mut s = IntervalSampler::new(100);
        s.sample(100, &[("x", 10)]);
        s.sample(250, &[("x", 25)]); // clock jumped over the 200 boundary
        s.finish(275, &[("x", 30)]);
        let r = s.records();
        assert_eq!(r.len(), 3);
        assert_eq!((r[0].start, r[0].end), (0, 100));
        assert_eq!((r[1].start, r[1].end), (100, 200));
        assert_eq!(r[1].counters, vec![("x", 15)]);
        assert_eq!((r[2].start, r[2].end), (200, 275));
        assert_eq!(r[2].counters, vec![("x", 5)]);
    }

    #[test]
    fn finish_closes_partial_final_window() {
        // Run length (733) is not a multiple of the period (100): finish
        // must close a short tail window [700, 733) whose deltas account
        // for exactly the counts accrued since the last full boundary.
        let mut s = IntervalSampler::new(100);
        let mut cum = 0u64;
        for t in (100..=700).step_by(100) {
            cum += t / 50; // arbitrary monotone counter
            assert!(s.due(t));
            s.sample(t, &[("ops", cum)]);
        }
        s.finish(733, &[("ops", cum + 9)]);
        let r = s.records();
        assert_eq!(r.len(), 8);
        let tail = r.last().unwrap();
        assert_eq!((tail.start, tail.end), (700, 733));
        assert!(tail.end - tail.start < s.period());
        assert_eq!(tail.counters, vec![("ops", 9)]);
        // Windows tile [0, 733) with no gaps and deltas sum to the total.
        let mut expect = 0;
        for rec in r {
            assert_eq!(rec.start, expect);
            expect = rec.end;
        }
        assert_eq!(expect, 733);
        let sum: u64 = r.iter().map(|rec| rec.counters[0].1).sum();
        assert_eq!(sum, cum + 9);
    }

    #[test]
    fn sampler_exact_boundary_end_emits_no_empty_tail() {
        let mut s = IntervalSampler::new(100);
        s.sample(100, &[("x", 4)]);
        s.finish(100, &[("x", 4)]);
        assert_eq!(s.records().len(), 1);
    }

    #[test]
    fn sampler_zero_length_run_still_records_once() {
        let mut s = IntervalSampler::new(100);
        s.finish(0, &[("x", 0)]);
        assert_eq!(s.records().len(), 1);
        assert_eq!((s.records()[0].start, s.records()[0].end), (0, 0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn sampler_rejects_zero_period() {
        let _ = IntervalSampler::new(0);
    }
}
