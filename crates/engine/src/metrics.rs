//! A unified metrics registry: the single export path for run reports.
//!
//! Components register metrics by name; JSON and CSV are rendered from
//! the same flattened rows, so the two formats agree field-for-field by
//! construction (previously each output path hand-rolled its own format
//! strings and they drifted).
//!
//! # Example
//!
//! ```
//! use cmpsim_engine::metrics::MetricsRegistry;
//!
//! let mut m = MetricsRegistry::new();
//! m.set_text("workload", "TP");
//! m.set_counter("cycles", 1234);
//! m.set_gauge("l2_hit_rate", 0.875);
//! assert!(m.to_json().contains("\"cycles\":1234"));
//! let (header, row) = m.to_csv();
//! assert_eq!(header, "workload,cycles,l2_hit_rate");
//! assert_eq!(row, "TP,1234,0.875000");
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::stats::Log2Histogram;

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotonic integer count.
    Counter(u64),
    /// Point-in-time float (rates, means).
    Gauge(f64),
    /// Distribution, exported as `name.count/.mean/.p50/.p95/.p99/.max`.
    /// Boxed: a histogram is ~0.5 KB and would otherwise dominate the
    /// enum's size for every counter in the registry.
    Histogram(Box<Log2Histogram>),
    /// Label (workload name, policy name). Quoted in JSON, raw in CSV.
    Text(String),
}

/// A flattened scalar cell, shared by the JSON and CSV renderers.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricScalar {
    /// Rendered as a bare integer.
    U64(u64),
    /// Rendered as a fixed-precision float (6 places) in both formats.
    F64(f64),
    /// Rendered quoted in JSON, raw in CSV.
    Text(String),
}

impl MetricScalar {
    fn json_value(&self) -> String {
        match self {
            MetricScalar::U64(v) => v.to_string(),
            MetricScalar::F64(v) => format_f64(*v),
            MetricScalar::Text(t) => format!("\"{t}\""),
        }
    }

    fn csv_value(&self) -> String {
        match self {
            MetricScalar::U64(v) => v.to_string(),
            MetricScalar::F64(v) => format_f64(*v),
            MetricScalar::Text(t) => t.clone(),
        }
    }
}

/// One shared float rendering so JSON and CSV can never disagree.
fn format_f64(v: f64) -> String {
    format!("{v:.6}")
}

/// Ordered name → metric map with merge and JSON/CSV export.
///
/// Insertion order is preserved: export columns appear in the order the
/// metrics were first registered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    entries: Vec<(String, Metric)>,
    index: HashMap<String, usize>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered metrics (histograms count once).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.index.get(name).map(|&i| &self.entries[i].1)
    }

    /// Registered `(name, metric)` pairs in insertion order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.entries.iter().map(|(n, m)| (n.as_str(), m))
    }

    fn upsert(&mut self, name: &str, metric: Metric) -> &mut Metric {
        match self.index.get(name) {
            Some(&i) => {
                self.entries[i].1 = metric;
                &mut self.entries[i].1
            }
            None => {
                self.index.insert(name.to_string(), self.entries.len());
                self.entries.push((name.to_string(), metric));
                &mut self.entries.last_mut().unwrap().1
            }
        }
    }

    /// Sets (or replaces) a counter.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.upsert(name, Metric::Counter(value));
    }

    /// Adds to a counter, creating it at `by` if absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a non-counter.
    pub fn inc_counter(&mut self, name: &str, by: u64) {
        match self.index.get(name) {
            Some(&i) => match &mut self.entries[i].1 {
                Metric::Counter(v) => *v += by,
                other => panic!("metric {name} is not a counter: {other:?}"),
            },
            None => self.set_counter(name, by),
        }
    }

    /// Sets (or replaces) a gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.upsert(name, Metric::Gauge(value));
    }

    /// Sets (or replaces) a text label.
    pub fn set_text(&mut self, name: &str, value: impl Into<String>) {
        self.upsert(name, Metric::Text(value.into()));
    }

    /// Sets (or replaces) a histogram with a copy of `h`.
    pub fn set_histogram(&mut self, name: &str, h: &Log2Histogram) {
        self.upsert(name, Metric::Histogram(Box::new(h.clone())));
    }

    /// Merges another registry into this one: counters add, histograms
    /// merge, gauges and text take the other's value, and names new to
    /// this registry append in the other's order.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, metric) in other.entries() {
            match (self.index.get(name).copied(), metric) {
                (Some(i), Metric::Counter(v)) => {
                    if let Metric::Counter(mine) = &mut self.entries[i].1 {
                        *mine += v;
                        continue;
                    }
                    self.entries[i].1 = metric.clone();
                }
                (Some(i), Metric::Histogram(h)) => {
                    if let Metric::Histogram(mine) = &mut self.entries[i].1 {
                        mine.merge(h);
                        continue;
                    }
                    self.entries[i].1 = metric.clone();
                }
                (Some(i), _) => self.entries[i].1 = metric.clone(),
                (None, _) => {
                    self.upsert(name, metric.clone());
                }
            }
        }
    }

    /// Flattens to `(name, scalar)` rows: counters/gauges/text pass
    /// through; a histogram named `h` becomes `h.count`, `h.mean`,
    /// `h.p50`, `h.p95`, `h.p99`, `h.max`.
    pub fn flat_rows(&self) -> Vec<(String, MetricScalar)> {
        let mut rows = Vec::with_capacity(self.entries.len());
        for (name, metric) in &self.entries {
            match metric {
                Metric::Counter(v) => rows.push((name.clone(), MetricScalar::U64(*v))),
                Metric::Gauge(v) => rows.push((name.clone(), MetricScalar::F64(*v))),
                Metric::Text(t) => rows.push((name.clone(), MetricScalar::Text(t.clone()))),
                Metric::Histogram(h) => {
                    rows.push((format!("{name}.count"), MetricScalar::U64(h.count())));
                    rows.push((format!("{name}.mean"), MetricScalar::F64(h.mean())));
                    rows.push((format!("{name}.p50"), MetricScalar::U64(h.percentile(0.50))));
                    rows.push((format!("{name}.p95"), MetricScalar::U64(h.percentile(0.95))));
                    rows.push((format!("{name}.p99"), MetricScalar::U64(h.percentile(0.99))));
                    rows.push((format!("{name}.max"), MetricScalar::U64(h.max())));
                }
            }
        }
        rows
    }

    /// Renders one flat JSON object from [`MetricsRegistry::flat_rows`].
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.flat_rows().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{}", value.json_value());
        }
        out.push('}');
        out
    }

    /// Renders a `(header, row)` CSV pair from the same rows as
    /// [`MetricsRegistry::to_json`].
    pub fn to_csv(&self) -> (String, String) {
        let rows = self.flat_rows();
        let header = rows
            .iter()
            .map(|(n, _)| n.as_str())
            .collect::<Vec<_>>()
            .join(",");
        let row = rows
            .iter()
            .map(|(_, v)| v.csv_value())
            .collect::<Vec<_>>()
            .join(",");
        (header, row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.set_text("workload", "TP");
        m.set_counter("cycles", 100);
        m.set_gauge("rate", 0.5);
        let mut h = Log2Histogram::new();
        h.add(10);
        h.add(100);
        m.set_histogram("lat", &h);
        m
    }

    #[test]
    fn insertion_order_preserved() {
        let m = sample();
        let names: Vec<&str> = m.entries().map(|(n, _)| n).collect();
        assert_eq!(names, ["workload", "cycles", "rate", "lat"]);
    }

    #[test]
    fn upsert_replaces_in_place() {
        let mut m = sample();
        m.set_counter("cycles", 200);
        assert_eq!(m.get("cycles"), Some(&Metric::Counter(200)));
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn inc_counter_accumulates_and_creates() {
        let mut m = MetricsRegistry::new();
        m.inc_counter("x", 2);
        m.inc_counter("x", 3);
        assert_eq!(m.get("x"), Some(&Metric::Counter(5)));
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn inc_counter_rejects_gauges() {
        let mut m = MetricsRegistry::new();
        m.set_gauge("x", 1.0);
        m.inc_counter("x", 1);
    }

    #[test]
    fn merge_adds_counters_merges_histograms() {
        let mut a = sample();
        let mut b = sample();
        b.set_gauge("rate", 0.75);
        b.set_counter("extra", 7);
        a.merge(&b);
        assert_eq!(a.get("cycles"), Some(&Metric::Counter(200)));
        assert_eq!(a.get("rate"), Some(&Metric::Gauge(0.75)));
        assert_eq!(a.get("extra"), Some(&Metric::Counter(7)));
        match a.get("lat") {
            Some(Metric::Histogram(h)) => assert_eq!(h.count(), 4),
            other => panic!("lat should be a histogram, got {other:?}"),
        }
    }

    #[test]
    fn json_and_csv_agree_field_for_field() {
        let m = sample();
        let json = m.to_json();
        let (header, row) = m.to_csv();
        let cols: Vec<&str> = header.split(',').collect();
        let vals: Vec<&str> = row.split(',').collect();
        assert_eq!(cols.len(), vals.len());
        for (c, v) in cols.iter().zip(&vals) {
            // Every CSV cell appears as the same key:value in the JSON
            // (text cells are quoted there).
            let quoted = format!("\"{c}\":\"{v}\"");
            let bare = format!("\"{c}\":{v}");
            assert!(
                json.contains(&quoted) || json.contains(&bare),
                "column {c}={v} missing from JSON {json}"
            );
        }
    }

    #[test]
    fn histogram_flattens_to_six_scalars() {
        let m = sample();
        let rows = m.flat_rows();
        let lat: Vec<&str> = rows
            .iter()
            .filter(|(n, _)| n.starts_with("lat."))
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(
            lat,
            [
                "lat.count",
                "lat.mean",
                "lat.p50",
                "lat.p95",
                "lat.p99",
                "lat.max"
            ]
        );
    }

    #[test]
    fn json_shape_is_balanced() {
        let json = sample().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('"').count() % 2, 0);
    }
}
