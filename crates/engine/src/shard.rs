//! Conservative-lookahead machinery for sharded (parallel-in-one-run)
//! execution.
//!
//! The simulated machine's agents can advance concurrently only inside
//! *conservative time windows*: a shard executing window `k` may not
//! observe an effect produced in window `k` by another shard, so the
//! window width must be a lower bound on the latency of any cross-shard
//! interaction. In the modelled CMP that bound is the ring's minimum
//! hop latency — no message reaches another agent in fewer cycles than
//! one ring hop ([`Lookahead::from_ring_hop`]).
//!
//! Three pieces live here:
//!
//! * [`Lookahead`] — the bound itself, plus derived sizes (how far, in
//!   references, a frontend producer may run ahead of the event loop).
//! * [`WindowPlan`] — the window algebra: which window a cycle falls in
//!   and where the boundaries are. The defining property (checked by the
//!   property tests): a message sent in window `k` with at least the
//!   lookahead of latency is delivered in a window strictly after `k`,
//!   so no event ever crosses a window boundary backwards.
//! * [`DelayedQueue`] — a deliver-at-time mailbox for cross-shard
//!   messages (the `cachesim-rs-mp` delayed-message-queue shape):
//!   senders enqueue with an explicit delivery time at least one
//!   lookahead ahead, receivers drain everything due in their current
//!   window. Same-sender messages stay in send order.

use std::collections::VecDeque;

use crate::Cycle;

/// A conservative lower bound on cross-shard latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookahead {
    cycles: Cycle,
}

impl Lookahead {
    /// A lookahead of `cycles` (clamped to at least 1: a zero-width
    /// window would serialize everything).
    pub fn new(cycles: Cycle) -> Self {
        Lookahead {
            cycles: cycles.max(1),
        }
    }

    /// The lookahead implied by a ring with the given per-hop latency:
    /// the minimum distance between distinct agents is one hop, so no
    /// cross-shard effect lands sooner than `hop_cycles` after its
    /// cause.
    pub fn from_ring_hop(hop_cycles: Cycle) -> Self {
        Self::new(hop_cycles)
    }

    /// The window width in cycles.
    pub fn cycles(&self) -> Cycle {
        self.cycles
    }

    /// How many references a frontend shard may generate ahead of the
    /// event loop: `windows_ahead` windows of slack, converted from
    /// cycles to references via the workload's issue interval, clamped
    /// to a range that keeps the handoff rings small but amortized.
    ///
    /// The frontend stream is a pure per-thread function, so running
    /// ahead is always *safe*; the window bound keeps the pipeline's
    /// buffering (and its memory) proportional to the machine's real
    /// lookahead instead of unbounded.
    pub fn ring_capacity(&self, issue_interval: u64, windows_ahead: u64) -> usize {
        let refs = (self.cycles * windows_ahead) / issue_interval.max(1);
        refs.clamp(64, 8192) as usize
    }
}

/// Tiles the time axis into consecutive windows of one lookahead each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowPlan {
    base: Cycle,
    width: Cycle,
}

impl WindowPlan {
    /// Windows of `lookahead` width starting at `base`: window `k`
    /// covers `[base + k*width, base + (k+1)*width)`.
    pub fn new(base: Cycle, lookahead: Lookahead) -> Self {
        WindowPlan {
            base,
            width: lookahead.cycles(),
        }
    }

    /// The window width in cycles.
    pub fn width(&self) -> Cycle {
        self.width
    }

    /// The window index containing `t` (cycles before `base` count as
    /// window 0 — the plan starts at its base).
    pub fn index_of(&self, t: Cycle) -> u64 {
        t.saturating_sub(self.base) / self.width
    }

    /// The half-open cycle range `[lo, hi)` of window `k`.
    pub fn bounds(&self, k: u64) -> (Cycle, Cycle) {
        let lo = self.base + k * self.width;
        (lo, lo + self.width)
    }

    /// First cycle strictly after `t`'s window — the earliest time an
    /// effect produced at `t` by another shard may need to be visible.
    pub fn next_boundary(&self, t: Cycle) -> Cycle {
        self.bounds(self.index_of(t)).1
    }
}

/// A deterministic deliver-at-time mailbox for cross-shard messages.
///
/// Messages are enqueued with an absolute delivery time and drained in
/// `(delivery time, enqueue order)` order once due — so same-sender
/// messages are never reordered, and nothing is ever dropped. The
/// enqueue side enforces the conservative contract: a message's
/// delivery time may never precede times already released to the
/// receiver (checked in debug builds, like the event queue's
/// no-past-scheduling rule).
#[derive(Debug)]
pub struct DelayedQueue<T> {
    /// Pending messages in `(time, seq)` order. Kept sorted lazily: the
    /// common case (monotone senders) appends at the back.
    pending: VecDeque<(Cycle, u64, T)>,
    seq: u64,
    released: Cycle,
}

impl<T> DelayedQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        DelayedQueue {
            pending: VecDeque::new(),
            seq: 0,
            released: 0,
        }
    }

    /// Enqueues `msg` for delivery at `at`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `at` precedes a time already drained
    /// by [`DelayedQueue::pop_due`] — that message would cross a window
    /// boundary backwards.
    pub fn push(&mut self, at: Cycle, msg: T) {
        debug_assert!(
            at >= self.released,
            "cross-shard message scheduled into the past: {} < {}",
            at,
            self.released
        );
        let seq = self.seq;
        self.seq += 1;
        // Insert before the first strictly-later entry, scanning from
        // the back: monotone senders append in O(1).
        let mut i = self.pending.len();
        while i > 0 {
            let (t, s, _) = &self.pending[i - 1];
            if (*t, *s) <= (at, seq) {
                break;
            }
            i -= 1;
        }
        self.pending.insert(i, (at, seq, msg));
    }

    /// Removes and returns the oldest message due at or before `now`,
    /// advancing the released watermark.
    pub fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, T)> {
        match self.pending.front() {
            Some(&(t, _, _)) if t <= now => {
                let (t, _, msg) = self.pending.pop_front().expect("peeked");
                self.released = self.released.max(t);
                Some((t, msg))
            }
            _ => None,
        }
    }

    /// Delivery time of the next pending message, due or not.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.pending.front().map(|&(t, _, _)| t)
    }

    /// Number of pending messages.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

impl<T> Default for DelayedQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A deterministic partition of agents (or thread streams) into shards.
///
/// Shard membership is a pure function of the index, so every build of
/// a run — serial, sharded, or differently sharded — agrees on who owns
/// what, and merged statistics can be summed in a fixed order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shards: usize,
    items: usize,
}

impl ShardPlan {
    /// Partitions `items` agents into `shards` shards (clamped to
    /// `[1, items]`, so no shard is ever empty when `items > 0`).
    pub fn new(items: usize, shards: usize) -> Self {
        ShardPlan {
            shards: shards.clamp(1, items.max(1)),
            items,
        }
    }

    /// Number of shards after clamping.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning item `i`: contiguous blocks, so items that are
    /// physically adjacent (threads of one L2 slice) land in one shard.
    pub fn shard_of(&self, i: usize) -> usize {
        debug_assert!(i < self.items);
        i * self.shards / self.items
    }

    /// The items shard `s` owns, in ascending order.
    pub fn items_of(&self, s: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.items).filter(move |&i| self.shard_of(i) == s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookahead_clamps_zero() {
        assert_eq!(Lookahead::new(0).cycles(), 1);
        assert_eq!(Lookahead::from_ring_hop(2).cycles(), 2);
    }

    #[test]
    fn ring_capacity_scales_and_clamps() {
        let la = Lookahead::new(2);
        assert_eq!(la.ring_capacity(1, 1024), 2048);
        assert_eq!(la.ring_capacity(4, 1024), 512);
        assert_eq!(la.ring_capacity(1, 1), 64); // floor
        assert_eq!(la.ring_capacity(1, 1 << 20), 8192); // ceiling
    }

    #[test]
    fn window_indexing_and_bounds() {
        let plan = WindowPlan::new(100, Lookahead::new(10));
        assert_eq!(plan.index_of(100), 0);
        assert_eq!(plan.index_of(109), 0);
        assert_eq!(plan.index_of(110), 1);
        assert_eq!(plan.bounds(2), (120, 130));
        assert_eq!(plan.next_boundary(115), 120);
        // Pre-base times collapse into window 0.
        assert_eq!(plan.index_of(7), 0);
    }

    #[test]
    fn delayed_queue_orders_by_time_then_fifo() {
        let mut q = DelayedQueue::new();
        q.push(5, "a");
        q.push(3, "b");
        q.push(5, "c");
        assert_eq!(q.peek_time(), Some(3));
        assert_eq!(q.pop_due(2), None);
        assert_eq!(q.pop_due(5), Some((3, "b")));
        assert_eq!(q.pop_due(5), Some((5, "a")));
        assert_eq!(q.pop_due(5), Some((5, "c")));
        assert!(q.is_empty());
    }

    #[test]
    fn delayed_queue_holds_future_messages() {
        let mut q = DelayedQueue::new();
        q.push(10, 1u32);
        assert_eq!(q.pop_due(9), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_due(10), Some((10, 1)));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "into the past")]
    fn delayed_queue_rejects_backwards_delivery() {
        let mut q = DelayedQueue::new();
        q.push(10, ());
        q.pop_due(10);
        q.push(5, ());
    }

    #[test]
    fn shard_plan_partitions_contiguously_and_completely() {
        let plan = ShardPlan::new(16, 4);
        let owners: Vec<usize> = (0..16).map(|i| plan.shard_of(i)).collect();
        assert_eq!(owners[..4], [0, 0, 0, 0]);
        assert_eq!(owners[12..], [3, 3, 3, 3]);
        // Every item owned exactly once; ownership is monotone.
        for s in 0..4 {
            assert_eq!(plan.items_of(s).count(), 4);
        }
        assert!(owners.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn shard_plan_clamps_excess_shards() {
        let plan = ShardPlan::new(3, 8);
        assert_eq!(plan.shards(), 3);
        let plan = ShardPlan::new(0, 8);
        assert_eq!(plan.shards(), 1);
    }
}
