//! Progress heartbeat for long runs: a periodic stderr line with cycles
//! simulated, a cycles/sec EMA, and an ETA from reference completion.
//!
//! Off by default. The driver polls [`ProgressMeter::maybe_beat`] every
//! few thousand events (an `Instant::now` read only on those polls), so
//! the hot loop pays one branch per event when the meter is off and a
//! strided clock check when it is on.

use std::time::Instant;

use crate::Cycle;

/// Emits a heartbeat line to stderr at most once per configured period.
#[derive(Debug)]
pub struct ProgressMeter {
    every_secs: f64,
    start: Instant,
    last_beat: Instant,
    last_cycles: Cycle,
    ema_cps: f64,
    beats: u64,
}

impl ProgressMeter {
    /// A meter that reports every `every_secs` wall seconds (values
    /// below 0.1 s are clamped up).
    pub fn new(every_secs: f64) -> Self {
        let now = Instant::now();
        ProgressMeter {
            every_secs: every_secs.max(0.1),
            start: now,
            last_beat: now,
            last_cycles: 0,
            ema_cps: 0.0,
            beats: 0,
        }
    }

    /// The configured reporting period in seconds.
    pub fn every_secs(&self) -> f64 {
        self.every_secs
    }

    /// Heartbeats emitted so far.
    pub fn beats(&self) -> u64 {
        self.beats
    }

    /// Emits a heartbeat if the period has elapsed. `refs_done` /
    /// `refs_total` drive the ETA (pass 0 for `refs_total` when
    /// unknown; the ETA is then omitted).
    pub fn maybe_beat(&mut self, cycles: Cycle, refs_done: u64, refs_total: u64) {
        let dt = self.last_beat.elapsed().as_secs_f64();
        if dt < self.every_secs {
            return;
        }
        let line = self.beat_line(cycles, refs_done, refs_total, dt);
        eprintln!("{line}");
    }

    /// Builds the heartbeat line and advances the meter state (split out
    /// from [`ProgressMeter::maybe_beat`] for testability).
    pub fn beat_line(
        &mut self,
        cycles: Cycle,
        refs_done: u64,
        refs_total: u64,
        dt_secs: f64,
    ) -> String {
        // A degenerate interval (forced beat, stalled clock) carries no
        // rate information: keep the prior EMA instead of folding in a
        // wild or non-finite instantaneous rate. The EMA then stays 0.0
        // (not NaN/inf) until the first real sample window closes.
        if dt_secs >= 1e-3 {
            let inst_cps = (cycles.saturating_sub(self.last_cycles)) as f64 / dt_secs;
            if inst_cps.is_finite() {
                self.ema_cps = if self.beats == 0 {
                    inst_cps
                } else {
                    0.5 * self.ema_cps + 0.5 * inst_cps
                };
            }
        }
        self.last_beat = Instant::now();
        self.last_cycles = cycles;
        self.beats += 1;
        let elapsed = self.start.elapsed().as_secs_f64();
        let mut line = format!(
            "progress: {:.1}M cycles in {:.0}s ({:.2}M cyc/s)",
            cycles as f64 / 1e6,
            elapsed,
            self.ema_cps / 1e6
        );
        if refs_total > 0 {
            let pct = 100.0 * refs_done as f64 / refs_total as f64;
            line.push_str(&format!(", refs {pct:.0}%"));
            if refs_done > 0 && refs_done < refs_total {
                let eta = elapsed * (refs_total - refs_done) as f64 / refs_done as f64;
                if eta.is_finite() {
                    line.push_str(&format!(", eta {eta:.0}s"));
                }
            }
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_beat_seeds_the_ema() {
        let mut m = ProgressMeter::new(5.0);
        let line = m.beat_line(2_000_000, 50, 100, 1.0);
        assert!(line.contains("2.0M cycles"), "{line}");
        assert!(line.contains("2.00M cyc/s"), "{line}");
        assert!(line.contains("refs 50%"), "{line}");
        assert!(line.contains("eta "), "{line}");
        assert_eq!(m.beats(), 1);
    }

    #[test]
    fn ema_smooths_across_beats() {
        let mut m = ProgressMeter::new(5.0);
        m.beat_line(1_000_000, 1, 10, 1.0); // 1M cyc/s
        let line = m.beat_line(4_000_000, 2, 10, 1.0); // inst 3M, ema 2M
        assert!(line.contains("2.00M cyc/s"), "{line}");
    }

    #[test]
    fn eta_omitted_without_totals() {
        let mut m = ProgressMeter::new(5.0);
        let line = m.beat_line(100, 0, 0, 1.0);
        assert!(!line.contains("refs"), "{line}");
        assert!(!line.contains("eta"), "{line}");
    }

    #[test]
    fn zero_length_interval_keeps_prior_rate() {
        let mut m = ProgressMeter::new(5.0);
        m.beat_line(1_000_000, 1, 10, 1.0); // 1M cyc/s
        let line = m.beat_line(2_000_000, 2, 10, 0.0); // no rate info
        assert!(line.contains("1.00M cyc/s"), "{line}");
        assert!(!line.contains("NaN") && !line.contains("inf"), "{line}");
    }

    #[test]
    fn first_window_with_zero_throughput_stays_finite() {
        let mut m = ProgressMeter::new(5.0);
        let line = m.beat_line(0, 0, 100, 0.0);
        assert!(line.contains("0.00M cyc/s"), "{line}");
        assert!(!line.contains("NaN") && !line.contains("inf"), "{line}");
        // No refs done yet: the ETA must be omitted, not infinite.
        assert!(!line.contains("eta"), "{line}");
    }

    #[test]
    fn period_is_clamped() {
        let m = ProgressMeter::new(0.0);
        assert!(m.every_secs() >= 0.1);
    }
}
