//! Host-side profiling: where does the *simulator's* wall-clock time go?
//!
//! The telemetry ([`crate::telemetry`]) and span ([`crate::spans`]) layers
//! observe the *simulated* machine; this module observes the simulator
//! *host process*: per-pipeline-stage wall-time attribution plus periodic
//! [`HostSample`] gauges (event-queue occupancy, MSHR/WBQ depths, RSS,
//! events/sec).
//!
//! # Design
//!
//! * **Zero-cost when off.** [`HostProfiler`] follows the same contract as
//!   `Telemetry`/`SpanTracer`: a disabled handle is a `None` and the event
//!   loop runs its uninstrumented path.
//! * **Stride-sampled when on.** The simulator dispatches ~10M events per
//!   wall-second, so even one clock read per event would cost several
//!   percent. Instead the driver times one full iteration out of every
//!   `stride` (deterministically), scales the observed ticks by `stride`,
//!   and accumulates per-stage. Over the millions of events in a run the
//!   estimate converges on the true attribution while the amortized cost
//!   stays at a fraction of a nanosecond per event.
//! * **TSC-or-Instant clock.** On x86_64 the timestamp counter (~5-10 ns a
//!   read) is used, calibrated once per process against the monotonic OS
//!   clock; elsewhere `Instant` is the fallback. See [`now_ticks`].
//!
//! # Example
//!
//! ```
//! use cmpsim_engine::profiler::{now_ticks, HostProfiler, HostStage};
//!
//! let prof = HostProfiler::with_stride(1);
//! let t0 = now_ticks();
//! let n: u64 = (0..10_000).sum(); // the "stage work"
//! assert!(n > 0);
//! prof.add_sampled(HostStage::Frontend, now_ticks().saturating_sub(t0), 1);
//! prof.record_run_wall(1_000_000);
//! let report = prof.report();
//! assert!(report.stage_ns[HostStage::Frontend as usize] > 0);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::Cycle;

/// One host-side attribution bucket. The first six mirror the system's
/// pipeline-stage modules; `EventQueue` is time inside the calendar
/// queue's pop path, `Observe` is sampler/progress bookkeeping between
/// dispatches, and `Other` is the residual the report derives (never
/// accumulated directly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HostStage {
    /// Thread issue: reference processing, L1/L2 lookup, MSHRs.
    Frontend = 0,
    /// Miss path: ring issue and combined-response handling.
    BusIssue = 1,
    /// Snoop window: peer/L3/memory response collection.
    Snoop = 2,
    /// Write-back path: WBQ drain, WBHT filter, castout issue.
    Castout = 3,
    /// Completion: fills, snarf absorption, invalidations.
    Fill = 4,
    /// Interval sampling, progress, and debug-invariant bookkeeping.
    Observe = 5,
    /// Calendar-queue pop (bucket scan, rebase, overflow migration).
    EventQueue = 6,
    /// Residual wall time not covered by a timed bucket.
    Other = 7,
}

/// Number of [`HostStage`] buckets (including the derived `Other`).
pub const STAGE_COUNT: usize = 8;

/// Buckets the profiler accumulates directly (everything but `Other`).
pub const TIMED_STAGES: usize = 7;

impl HostStage {
    /// Stable lower-case tag used in JSON output and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            HostStage::Frontend => "frontend",
            HostStage::BusIssue => "bus_issue",
            HostStage::Snoop => "snoop",
            HostStage::Castout => "castout",
            HostStage::Fill => "fill",
            HostStage::Observe => "observe",
            HostStage::EventQueue => "event_queue",
            HostStage::Other => "other",
        }
    }

    /// All stages, in index order.
    pub fn all() -> [HostStage; STAGE_COUNT] {
        [
            HostStage::Frontend,
            HostStage::BusIssue,
            HostStage::Snoop,
            HostStage::Castout,
            HostStage::Fill,
            HostStage::Observe,
            HostStage::EventQueue,
            HostStage::Other,
        ]
    }
}

/// Name of the tick clock backing [`now_ticks`] on this build.
#[cfg(target_arch = "x86_64")]
pub const CLOCK_BACKEND: &str = "tsc";
/// Name of the tick clock backing [`now_ticks`] on this build.
#[cfg(not(target_arch = "x86_64"))]
pub const CLOCK_BACKEND: &str = "instant";

/// Reads the raw tick clock: the x86_64 timestamp counter, or
/// nanoseconds of a process-global `Instant` elsewhere. Convert with
/// [`ticks_to_ns`]; raw ticks from different processes are not
/// comparable.
#[cfg(target_arch = "x86_64")]
#[inline]
pub fn now_ticks() -> u64 {
    // SAFETY: RDTSC is unprivileged and always available on x86_64.
    unsafe { core::arch::x86_64::_rdtsc() }
}

/// Reads the raw tick clock (monotonic nanoseconds on this build).
#[cfg(not(target_arch = "x86_64"))]
#[inline]
pub fn now_ticks() -> u64 {
    process_epoch().elapsed().as_nanos() as u64
}

#[cfg(not(target_arch = "x86_64"))]
fn process_epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Ticks per nanosecond of the [`now_ticks`] clock, calibrated once per
/// process (a ~5 ms sleep against the OS monotonic clock on the TSC
/// backend; exactly 1.0 on the `Instant` backend).
pub fn ticks_per_ns() -> f64 {
    static TPN: OnceLock<f64> = OnceLock::new();
    *TPN.get_or_init(|| {
        if CLOCK_BACKEND == "instant" {
            return 1.0;
        }
        let wall = Instant::now();
        let t0 = now_ticks();
        std::thread::sleep(Duration::from_millis(5));
        let ns = wall.elapsed().as_nanos() as u64;
        let ticks = now_ticks().saturating_sub(t0);
        if ns == 0 || ticks == 0 {
            1.0
        } else {
            ticks as f64 / ns as f64
        }
    })
}

/// Converts raw [`now_ticks`] ticks to nanoseconds.
pub fn ticks_to_ns(ticks: u64) -> u64 {
    (ticks as f64 / ticks_per_ns()) as u64
}

/// Current and peak resident-set size in kB, from `/proc/self/status`
/// (`(0, 0)` when unreadable, e.g. on non-Linux hosts).
pub fn rss_kb() -> (u64, u64) {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return (0, 0);
    };
    let field = |tag: &str| -> u64 {
        status
            .lines()
            .find_map(|l| l.strip_prefix(tag))
            .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
            .unwrap_or(0)
    };
    (field("VmRSS:"), field("VmHWM:"))
}

/// Default sampling stride: one timed event-loop iteration in 128.
///
/// A sampled iteration costs roughly 300 ns (four clock reads, the
/// accounting, and an icache-cold out-of-line call), so at stride 128
/// the default profiler costs ~2.4 ns per ~150 ns event — comfortably
/// inside the 3% overhead gate — while still collecting tens of
/// thousands of samples per wall-clock second.
pub const DEFAULT_STRIDE: u32 = 128;

/// Simulator-side gauge values the host supplies when a [`HostSample`]
/// is taken (the profiler itself only knows wall time and RSS).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostGauges {
    /// Simulated cycle at the sample point.
    pub cycles: Cycle,
    /// Events dispatched so far.
    pub events: u64,
    /// Total pending events in the calendar queue.
    pub eq_len: u64,
    /// Pending events in the near-future bucket ring.
    pub eq_ring_len: u64,
    /// Pending events parked in the far-future overflow heap.
    pub eq_overflow_len: u64,
    /// Allocated MSHR slab entries across all L2s.
    pub mshr_used: u64,
    /// Total MSHR slab capacity across all L2s.
    pub mshr_cap: u64,
    /// Entries across all L2 write-back queues.
    pub wbq_depth: u64,
}

/// One periodic host-side sample: gauges plus cumulative per-stage
/// wall-time attribution, taken on the interval-sampler cadence.
#[derive(Debug, Clone, PartialEq)]
pub struct HostSample {
    /// Sample index within the profiler's life (0-based).
    pub sample: u64,
    /// Wall nanoseconds since the profiler was created.
    pub wall_ns: u64,
    /// Simulated cycles per wall second since the previous sample.
    pub cycles_per_sec: u64,
    /// Events dispatched per wall second since the previous sample.
    pub events_per_sec: u64,
    /// Current resident-set size in kB.
    pub rss_kb: u64,
    /// Simulator gauges at the sample point.
    pub gauges: HostGauges,
    /// Cumulative per-stage attribution estimate in nanoseconds
    /// (indices follow [`HostStage`]; `Other` stays 0 here).
    pub stage_ns: [u64; STAGE_COUNT],
}

impl HostSample {
    /// Serializes the sample as a flat JSON object *body* (no braces):
    /// ready to splice into a stream frame. Key order is fixed.
    /// Wall-clock-dependent keys are `wall_ns`, `cycles_per_sec`,
    /// `events_per_sec`, `rss_kb`, and every `*_ns` key; the rest is
    /// deterministic for a fixed seed.
    pub fn to_json_body(&self) -> String {
        let g = &self.gauges;
        let mut s = format!(
            "\"sample\":{},\"cycles\":{},\"events\":{},\"eq_len\":{},\
             \"eq_ring_len\":{},\"eq_overflow_len\":{},\"mshr_used\":{},\
             \"mshr_cap\":{},\"wbq_depth\":{},\"wall_ns\":{},\
             \"cycles_per_sec\":{},\"events_per_sec\":{},\"rss_kb\":{}",
            self.sample,
            g.cycles,
            g.events,
            g.eq_len,
            g.eq_ring_len,
            g.eq_overflow_len,
            g.mshr_used,
            g.mshr_cap,
            g.wbq_depth,
            self.wall_ns,
            self.cycles_per_sec,
            self.events_per_sec,
            self.rss_kb,
        );
        for st in HostStage::all().iter().take(TIMED_STAGES) {
            s.push_str(&format!(
                ",\"{}_ns\":{}",
                st.as_str(),
                self.stage_ns[*st as usize]
            ));
        }
        s
    }
}

/// End-of-run host-profiling summary, carried on `RunReport`.
#[derive(Debug, Clone, PartialEq)]
pub struct HostReport {
    /// Tick-clock backend (`"tsc"` or `"instant"`).
    pub backend: &'static str,
    /// Sampling stride the attribution estimates were scaled by.
    pub stride: u32,
    /// Measured wall nanoseconds inside `System::run` (summed across
    /// repeated runs on one system).
    pub run_wall_ns: u64,
    /// Per-stage attribution estimate in nanoseconds. `Other` holds the
    /// residual `run_wall_ns - attributed` when positive.
    pub stage_ns: [u64; STAGE_COUNT],
    /// Scaled per-stage event-count estimates (timed buckets only).
    pub stage_events: [u64; STAGE_COUNT],
    /// Peak resident-set size in kB at report time (process-wide).
    pub peak_rss_kb: u64,
    /// The periodic samples taken during the run.
    pub samples: Vec<HostSample>,
}

impl HostReport {
    /// Nanoseconds directly attributed to timed buckets (excludes the
    /// derived `Other` residual).
    pub fn attributed_ns(&self) -> u64 {
        HostStage::all()
            .iter()
            .take(TIMED_STAGES)
            .map(|&s| self.stage_ns[s as usize])
            .sum()
    }

    /// Attribution accuracy: how close the stride-scaled estimate comes
    /// to the measured run wall time (1.0 = exact; symmetric, so an
    /// overshoot scores the same as an equal undershoot).
    pub fn coverage(&self) -> f64 {
        let attr = self.attributed_ns();
        let wall = self.run_wall_ns;
        if wall == 0 || attr == 0 {
            return 0.0;
        }
        attr.min(wall) as f64 / attr.max(wall) as f64
    }

    /// Share of the measured run wall time attributed to `stage`
    /// (the `Other` row reports the unattributed residual share).
    pub fn stage_share(&self, stage: HostStage) -> f64 {
        if self.run_wall_ns == 0 {
            return 0.0;
        }
        self.stage_ns[stage as usize] as f64 / self.run_wall_ns as f64
    }

    /// Renders a per-stage text table (totals, self-time share, scaled
    /// event-count estimate).
    pub fn render(&self) -> String {
        let mut out = format!(
            "host profile: {:.1} ms run wall ({} clock, stride {}), coverage {:.1}%\n",
            self.run_wall_ns as f64 / 1e6,
            self.backend,
            self.stride,
            self.coverage() * 100.0
        );
        out.push_str("  stage         time_ms   share    events\n");
        for st in HostStage::all() {
            out.push_str(&format!(
                "  {:<12} {:>9.2}  {:>5.1}%  {:>8}\n",
                st.as_str(),
                self.stage_ns[st as usize] as f64 / 1e6,
                self.stage_share(st) * 100.0,
                self.stage_events[st as usize],
            ));
        }
        out
    }
}

#[derive(Debug, Default)]
struct SampleBook {
    samples: Vec<HostSample>,
    last_wall_ns: u64,
    last_events: u64,
    last_cycles: Cycle,
}

#[derive(Debug)]
struct Core {
    stride: u32,
    created: Instant,
    stage_ticks: [AtomicU64; TIMED_STAGES],
    stage_hits: [AtomicU64; TIMED_STAGES],
    run_wall_ns: AtomicU64,
    book: Mutex<SampleBook>,
}

/// Cheap-to-clone handle for host-side profiling.
///
/// A disabled profiler holds no core: the driver checks
/// [`HostProfiler::is_enabled`] once and runs its uninstrumented loop,
/// preserving the zero-cost-when-off property of the observability
/// stack. Clones share one accumulator, mirroring `Telemetry`.
#[derive(Debug, Clone, Default)]
pub struct HostProfiler {
    core: Option<Arc<Core>>,
}

impl HostProfiler {
    /// A profiler that records nothing (the default).
    pub fn disabled() -> Self {
        HostProfiler { core: None }
    }

    /// An enabled profiler at the default stride.
    pub fn enabled() -> Self {
        Self::with_stride(DEFAULT_STRIDE)
    }

    /// An enabled profiler timing one event-loop iteration in `stride`
    /// (1 = every iteration; higher = cheaper, noisier).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is 0.
    pub fn with_stride(stride: u32) -> Self {
        assert!(stride > 0, "profiler stride must be at least 1");
        // Force calibration up front so the first timed iteration does
        // not pay the 5 ms calibration sleep.
        let _ = ticks_per_ns();
        HostProfiler {
            core: Some(Arc::new(Core {
                stride,
                created: Instant::now(),
                stage_ticks: Default::default(),
                stage_hits: Default::default(),
                run_wall_ns: AtomicU64::new(0),
                book: Mutex::new(SampleBook::default()),
            })),
        }
    }

    /// Whether profiling is on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// The sampling stride (1 when disabled, so callers can divide).
    pub fn stride(&self) -> u32 {
        self.core.as_ref().map_or(1, |c| c.stride)
    }

    /// Accumulates `ticks` of observed time and `hits` sampled events
    /// into `stage` (raw, unscaled; scaling by the stride happens at
    /// report time). No-op when disabled or for the derived `Other`.
    #[inline]
    pub fn add_sampled(&self, stage: HostStage, ticks: u64, hits: u64) {
        if let Some(core) = &self.core {
            let i = stage as usize;
            if i < TIMED_STAGES {
                core.stage_ticks[i].fetch_add(ticks, Ordering::Relaxed);
                core.stage_hits[i].fetch_add(hits, Ordering::Relaxed);
            }
        }
    }

    /// Adds measured wall time of one `System::run` call.
    pub fn record_run_wall(&self, ns: u64) {
        if let Some(core) = &self.core {
            core.run_wall_ns.fetch_add(ns, Ordering::Relaxed);
        }
    }

    fn scaled_stage_ns(core: &Core) -> [u64; STAGE_COUNT] {
        let mut out = [0u64; STAGE_COUNT];
        for (i, slot) in out.iter_mut().enumerate().take(TIMED_STAGES) {
            let ticks = core.stage_ticks[i].load(Ordering::Relaxed);
            *slot = ticks_to_ns(ticks.saturating_mul(u64::from(core.stride)));
        }
        out
    }

    /// Takes one [`HostSample`] from the supplied simulator gauges and
    /// appends it to the sample series. Returns `None` when disabled.
    pub fn sample(&self, gauges: HostGauges) -> Option<HostSample> {
        let core = self.core.as_ref()?;
        let wall_ns = core.created.elapsed().as_nanos() as u64;
        let (rss_now, _) = rss_kb();
        let mut book = core.book.lock().expect("profiler sample lock");
        let dt_ns = wall_ns.saturating_sub(book.last_wall_ns);
        // A sub-microsecond window carries no usable rate information
        // (a first sample racing the clock): report zero rather than a
        // billion-fold-amplified spike.
        let rate = |delta: u64| {
            if dt_ns < 1_000 {
                0
            } else {
                ((delta as f64) * 1e9 / dt_ns as f64) as u64
            }
        };
        let s = HostSample {
            sample: book.samples.len() as u64,
            wall_ns,
            cycles_per_sec: rate(gauges.cycles.saturating_sub(book.last_cycles)),
            events_per_sec: rate(gauges.events.saturating_sub(book.last_events)),
            rss_kb: rss_now,
            gauges,
            stage_ns: Self::scaled_stage_ns(core),
        };
        book.last_wall_ns = wall_ns;
        book.last_events = gauges.events;
        book.last_cycles = gauges.cycles;
        book.samples.push(s.clone());
        Some(s)
    }

    /// The samples taken so far (empty when disabled).
    pub fn samples(&self) -> Vec<HostSample> {
        match &self.core {
            Some(core) => core
                .book
                .lock()
                .expect("profiler sample lock")
                .samples
                .clone(),
            None => Vec::new(),
        }
    }

    /// Builds the end-of-run report (zeroed when disabled).
    pub fn report(&self) -> HostReport {
        let Some(core) = &self.core else {
            return HostReport {
                backend: CLOCK_BACKEND,
                stride: 1,
                run_wall_ns: 0,
                stage_ns: [0; STAGE_COUNT],
                stage_events: [0; STAGE_COUNT],
                peak_rss_kb: 0,
                samples: Vec::new(),
            };
        };
        let mut stage_ns = Self::scaled_stage_ns(core);
        let mut stage_events = [0u64; STAGE_COUNT];
        for (i, slot) in stage_events.iter_mut().enumerate().take(TIMED_STAGES) {
            *slot = core.stage_hits[i].load(Ordering::Relaxed) * u64::from(core.stride);
        }
        let run_wall_ns = core.run_wall_ns.load(Ordering::Relaxed);
        let attributed: u64 = stage_ns.iter().take(TIMED_STAGES).sum();
        stage_ns[HostStage::Other as usize] = run_wall_ns.saturating_sub(attributed);
        let (_, peak) = rss_kb();
        HostReport {
            backend: CLOCK_BACKEND,
            stride: core.stride,
            run_wall_ns,
            stage_ns,
            stage_events,
            peak_rss_kb: peak,
            samples: self.samples(),
        }
    }
}

/// Chrome trace-event lines putting the host samples on their own
/// process track (`pid` 9999) next to the simulated spans: one stacked
/// counter event per sample for stage time, plus queue-depth and
/// throughput counters. Timestamps reuse the simulated-cycle axis, so
/// Perfetto shows simulated spans and host stage time in one timeline.
pub fn chrome_host_events(samples: &[HostSample]) -> Vec<String> {
    const PID: u32 = 9999;
    let mut lines = Vec::new();
    if samples.is_empty() {
        return lines;
    }
    lines.push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\
         \"args\":{{\"name\":\"host (simulator wall-clock)\"}}}}"
    ));
    let mut prev = [0u64; STAGE_COUNT];
    for s in samples {
        let ts = s.gauges.cycles;
        let mut args = String::new();
        for st in HostStage::all().iter().take(TIMED_STAGES) {
            let i = *st as usize;
            let delta_us = s.stage_ns[i].saturating_sub(prev[i]) / 1_000;
            if !args.is_empty() {
                args.push(',');
            }
            args.push_str(&format!("\"{}\":{}", st.as_str(), delta_us));
            prev[i] = s.stage_ns[i];
        }
        lines.push(format!(
            "{{\"name\":\"host_stage_us\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{PID},\"args\":{{{args}}}}}"
        ));
        lines.push(format!(
            "{{\"name\":\"host_event_queue\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{PID},\
             \"args\":{{\"ring\":{},\"overflow\":{}}}}}",
            s.gauges.eq_ring_len, s.gauges.eq_overflow_len
        ));
        lines.push(format!(
            "{{\"name\":\"host_throughput\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{PID},\
             \"args\":{{\"events_per_sec\":{},\"cycles_per_sec\":{}}}}}",
            s.events_per_sec, s.cycles_per_sec
        ));
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_inert() {
        let p = HostProfiler::disabled();
        assert!(!p.is_enabled());
        assert_eq!(p.stride(), 1);
        p.add_sampled(HostStage::Frontend, 100, 1);
        assert!(p.sample(HostGauges::default()).is_none());
        let r = p.report();
        assert_eq!(r.run_wall_ns, 0);
        assert_eq!(r.coverage(), 0.0);
    }

    #[test]
    fn attribution_scales_by_stride() {
        let p = HostProfiler::with_stride(4);
        // 1000 raw ticks at stride 4 reports ~4000 ticks worth of ns.
        p.add_sampled(HostStage::Fill, 1000, 3);
        let r = p.report();
        let want = ticks_to_ns(4000);
        let got = r.stage_ns[HostStage::Fill as usize];
        assert!((got as i64 - want as i64).abs() <= 1, "{got} vs {want}");
        assert_eq!(r.stage_events[HostStage::Fill as usize], 12);
    }

    #[test]
    fn other_bucket_is_the_residual() {
        let p = HostProfiler::with_stride(1);
        p.add_sampled(HostStage::Frontend, 0, 0);
        p.record_run_wall(10_000);
        let r = p.report();
        assert_eq!(r.stage_ns[HostStage::Other as usize], 10_000);
        // Nothing attributed: coverage is 0, not NaN.
        assert_eq!(r.coverage(), 0.0);
    }

    #[test]
    fn coverage_is_symmetric() {
        let mk = |attr_ns: u64, wall: u64| {
            let p = HostProfiler::with_stride(1);
            // Convert the ns we want into raw ticks.
            let ticks = (attr_ns as f64 * ticks_per_ns()) as u64;
            p.add_sampled(HostStage::Snoop, ticks, 1);
            p.record_run_wall(wall);
            p.report().coverage()
        };
        let under = mk(90_000_000, 100_000_000);
        let over = mk(100_000_000, 90_000_000);
        assert!((under - over).abs() < 0.02, "{under} vs {over}");
        assert!(under > 0.85 && under < 0.95);
    }

    #[test]
    fn samples_track_deltas() {
        let p = HostProfiler::with_stride(1);
        let s0 = p
            .sample(HostGauges {
                cycles: 1000,
                events: 5000,
                ..Default::default()
            })
            .unwrap();
        assert_eq!(s0.sample, 0);
        let s1 = p
            .sample(HostGauges {
                cycles: 3000,
                events: 9000,
                eq_len: 7,
                eq_ring_len: 6,
                eq_overflow_len: 1,
                mshr_used: 3,
                mshr_cap: 32,
                wbq_depth: 2,
            })
            .unwrap();
        assert_eq!(s1.sample, 1);
        assert_eq!(s1.gauges.eq_len, 7);
        assert_eq!(p.samples().len(), 2);
        // Rates are computed from deltas, so they are finite and the
        // JSON body carries every advertised key.
        let body = s1.to_json_body();
        for key in [
            "\"sample\":",
            "\"cycles\":",
            "\"events\":",
            "\"eq_len\":",
            "\"eq_ring_len\":",
            "\"eq_overflow_len\":",
            "\"mshr_used\":",
            "\"mshr_cap\":",
            "\"wbq_depth\":",
            "\"wall_ns\":",
            "\"cycles_per_sec\":",
            "\"events_per_sec\":",
            "\"rss_kb\":",
            "\"frontend_ns\":",
            "\"event_queue_ns\":",
        ] {
            assert!(body.contains(key), "missing {key} in {body}");
        }
        assert!(!body.contains("\"other_ns\":"));
    }

    #[test]
    fn clones_share_one_accumulator() {
        let p = HostProfiler::with_stride(2);
        let q = p.clone();
        q.add_sampled(HostStage::Castout, 500, 1);
        assert!(p.report().stage_ns[HostStage::Castout as usize] > 0);
    }

    #[test]
    fn chrome_host_track_is_balanced_json() {
        let p = HostProfiler::with_stride(1);
        p.add_sampled(HostStage::Frontend, 10_000, 1);
        p.sample(HostGauges {
            cycles: 500,
            events: 100,
            ..Default::default()
        });
        p.sample(HostGauges {
            cycles: 1500,
            events: 300,
            ..Default::default()
        });
        let lines = chrome_host_events(&p.samples());
        // 1 metadata + 3 counters per sample.
        assert_eq!(lines.len(), 1 + 2 * 3);
        for l in &lines {
            assert_eq!(l.matches('{').count(), l.matches('}').count(), "{l}");
            assert_eq!(l.matches('"').count() % 2, 0, "{l}");
        }
        assert!(lines[1].contains("\"name\":\"host_stage_us\""));
        assert!(lines[1].contains("\"ts\":500"));
    }

    #[test]
    fn render_names_every_stage() {
        let p = HostProfiler::with_stride(1);
        p.record_run_wall(1_000_000);
        let text = p.report().render();
        for st in HostStage::all() {
            assert!(text.contains(st.as_str()), "missing {}", st.as_str());
        }
    }
}
