//! Live telemetry streaming: length-prefixed NDJSON over stdout or a
//! Unix socket.
//!
//! While [`crate::telemetry`] records *simulated* events to a file after
//! the fact, this module pushes interval counters and
//! [`crate::profiler::HostSample`]s out of a *running* simulation so an
//! external reader (the `telemetry_tail` bin today, a service endpoint
//! later) can watch the sweep live.
//!
//! # Wire format
//!
//! Each frame is one line: the decimal byte length of the JSON object, a
//! single space, the object, `\n`:
//!
//! ```text
//! 52 {"seq":0,"type":"hello","schema":"cmpsim-telemetry/1"}
//! 97 {"seq":1,"type":"run_start","cell":0,...}
//! ```
//!
//! The first frame on every connection is the `hello` header carrying
//! [`STREAM_SCHEMA`]; all subsequent frames carry a stream-wide strictly
//! increasing `seq` (assigned under the writer lock, so the wire order
//! matches) and a `cell` id so one socket can multiplex a whole
//! `--jobs N` grid. Unknown `type`s must be skipped by readers: the
//! schema version only bumps on incompatible changes.
//!
//! Like the rest of the observability stack, a disabled
//! [`TelemetryStream`] is a `None` and costs one branch per call site.

use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::interval::IntervalRecord;
use crate::profiler::HostSample;
use crate::Cycle;

/// Schema identifier sent in every `hello` frame. Readers should accept
/// this exact value and refuse streams with a different major version.
pub const STREAM_SCHEMA: &str = "cmpsim-telemetry/1";

/// The `hello` header frame body (seq 0, replayed to every late-attaching
/// socket client).
fn hello_json() -> String {
    format!("{{\"seq\":0,\"type\":\"hello\",\"schema\":\"{STREAM_SCHEMA}\"}}")
}

fn frame(json: &str) -> String {
    format!("{} {json}\n", json.len())
}

struct Inner {
    seq: u64,
    conns: Vec<Box<dyn Write + Send>>,
}

impl Inner {
    /// Writes one frame to every connection, dropping the ones whose
    /// writes fail (a detached tail must not kill the sweep).
    fn broadcast(&mut self, json: &str) {
        let line = frame(json);
        self.conns.retain_mut(|c| {
            c.write_all(line.as_bytes())
                .and_then(|()| c.flush())
                .is_ok()
        });
    }
}

struct Core {
    inner: Arc<Mutex<Inner>>,
    shutdown: Arc<AtomicBool>,
    /// Socket path to unlink when the stream is dropped.
    path: Option<PathBuf>,
}

impl Drop for Core {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(p) = &self.path {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// Cheap-to-clone handle for live telemetry streaming.
///
/// Clones share one sequence counter and connection set, so every run in
/// a parallel grid multiplexes onto the same ordered stream.
#[derive(Clone, Default)]
pub struct TelemetryStream {
    core: Option<Arc<Core>>,
}

impl std::fmt::Debug for TelemetryStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryStream")
            .field("enabled", &self.core.is_some())
            .finish()
    }
}

impl TelemetryStream {
    /// A stream that sends nothing (the default).
    pub fn disabled() -> Self {
        TelemetryStream { core: None }
    }

    /// Streams frames to standard output.
    pub fn stdout() -> Self {
        Self::to_writer(std::io::stdout())
    }

    /// Streams frames to an arbitrary writer (tests, pipes, `io::sink`).
    /// The `hello` frame is written immediately.
    pub fn to_writer<W: Write + Send + 'static>(w: W) -> Self {
        let mut inner = Inner {
            seq: 0,
            conns: vec![Box::new(w)],
        };
        inner.broadcast(&hello_json());
        inner.seq = 1;
        TelemetryStream {
            core: Some(Arc::new(Core {
                inner: Arc::new(Mutex::new(inner)),
                shutdown: Arc::new(AtomicBool::new(false)),
                path: None,
            })),
        }
    }

    /// Binds a Unix listener at `path` (replacing any stale socket file)
    /// and accepts clients on a background thread. Every client gets the
    /// `hello` frame on attach, then all frames broadcast from then on;
    /// the simulation never blocks on a slow or absent reader. The
    /// socket file is removed when the stream is dropped.
    pub fn listen_unix(path: &Path) -> std::io::Result<Self> {
        let _ = std::fs::remove_file(path);
        let listener = std::os::unix::net::UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let inner = Arc::new(Mutex::new(Inner {
            seq: 1,
            conns: Vec::new(),
        }));
        let shutdown = Arc::new(AtomicBool::new(false));
        let thread_inner = Arc::clone(&inner);
        let thread_stop = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            let hello = frame(&hello_json());
            while !thread_stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((mut conn, _)) => {
                        if conn
                            .write_all(hello.as_bytes())
                            .and_then(|()| conn.flush())
                            .is_ok()
                        {
                            let mut inner = thread_inner.lock().expect("stream accept lock");
                            inner.conns.push(Box::new(conn));
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(TelemetryStream {
            core: Some(Arc::new(Core {
                inner,
                shutdown,
                path: Some(path.to_path_buf()),
            })),
        })
    }

    /// Whether streaming is on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Number of currently attached sinks (0 when disabled).
    pub fn client_count(&self) -> usize {
        match &self.core {
            Some(core) => core.inner.lock().expect("stream lock").conns.len(),
            None => 0,
        }
    }

    /// Sends one record frame. `body` is a comma-led list of extra JSON
    /// fields (may be empty); `seq` is assigned under the writer lock so
    /// frames appear on the wire in sequence order.
    fn send(&self, kind: &str, cell: u64, body: &str) {
        let Some(core) = &self.core else { return };
        let mut inner = core.inner.lock().expect("stream lock");
        let json = format!(
            "{{\"seq\":{},\"type\":\"{kind}\",\"cell\":{cell}{body}}}",
            inner.seq
        );
        inner.seq += 1;
        inner.broadcast(&json);
    }

    /// Announces a run starting on `cell`.
    pub fn send_run_start(&self, cell: u64, workload: &str, policy: &str, refs_per_thread: u64) {
        self.send(
            "run_start",
            cell,
            &format!(
                ",\"workload\":\"{workload}\",\"policy\":\"{policy}\",\
                 \"refs_per_thread\":{refs_per_thread}"
            ),
        );
    }

    /// Streams one closed interval-counter window.
    pub fn send_interval(&self, cell: u64, rec: &IntervalRecord) {
        if self.core.is_none() {
            return;
        }
        let mut body = format!(",\"start\":{},\"end\":{}", rec.start, rec.end);
        for (name, delta) in &rec.counters {
            body.push_str(&format!(",\"{name}\":{delta}"));
        }
        self.send("interval", cell, &body);
    }

    /// Streams one host-profiler sample.
    pub fn send_host_sample(&self, cell: u64, sample: &HostSample) {
        if self.core.is_none() {
            return;
        }
        self.send("host_sample", cell, &format!(",{}", sample.to_json_body()));
    }

    /// Streams one cumulative decision-audit snapshot.
    pub fn send_decision(&self, cell: u64, f: &DecisionFrame) {
        if self.core.is_none() {
            return;
        }
        self.send(
            "decision",
            cell,
            &format!(
                ",\"cycle\":{},\"decisions\":{},\"aborts\":{},\"aborts_correct\":{},\
                 \"aborts_mispredicted\":{},\"allows_redundant\":{},\"snarfs\":{},\
                 \"snarfs_useful\":{},\"snarfs_wasted\":{},\"engaged\":{}",
                f.cycle,
                f.decisions,
                f.aborts,
                f.aborts_correct,
                f.aborts_mispredicted,
                f.allows_redundant,
                f.snarfs,
                f.snarfs_useful,
                f.snarfs_wasted,
                u8::from(f.engaged)
            ),
        );
    }

    /// Announces a run finishing on `cell`.
    pub fn send_run_end(&self, cell: u64, cycles: Cycle, events: u64) {
        self.send(
            "run_end",
            cell,
            &format!(",\"cycles\":{cycles},\"events\":{events}"),
        );
    }
}

/// One `decision` frame: cumulative decision-audit counters at an
/// interval boundary. Kept engine-side (plain fields, no simulator
/// types) so the stream's frame vocabulary lives in one module; the
/// core's audit layer fills it in. `engaged` is serialized as `0`/`1`
/// so [`frame_u64`] parses every numeric field uniformly.
#[derive(Debug, Clone, Copy, Default)]
pub struct DecisionFrame {
    /// Simulated cycle the snapshot was taken at.
    pub cycle: Cycle,
    /// WBHT verdicts audited so far.
    pub decisions: u64,
    /// Abort verdicts so far.
    pub aborts: u64,
    /// Aborts resolved correct so far.
    pub aborts_correct: u64,
    /// Aborts resolved mispredicted so far.
    pub aborts_mispredicted: u64,
    /// Allow verdicts squashed as already-in-L3 so far.
    pub allows_redundant: u64,
    /// Snarf placements so far.
    pub snarfs: u64,
    /// Snarfs resolved useful so far.
    pub snarfs_useful: u64,
    /// Snarfs resolved wasted so far.
    pub snarfs_wasted: u64,
    /// Retry-rate switch state last observed at a decision site.
    pub engaged: bool,
}

/// Reads one length-prefixed frame, returning the JSON payload
/// (`Ok(None)` at clean end-of-stream). Fails on a malformed prefix or a
/// length that disagrees with the payload, so corruption is detected at
/// the frame where it happens.
pub fn read_frame<R: BufRead>(r: &mut R) -> std::io::Result<Option<String>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let line = line.trim_end_matches('\n');
    if line.is_empty() {
        return Ok(None);
    }
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let (len, json) = line
        .split_once(' ')
        .ok_or_else(|| bad(format!("frame missing length prefix: {line:?}")))?;
    let len: usize = len
        .parse()
        .map_err(|_| bad(format!("bad frame length {len:?}")))?;
    if json.len() != len {
        return Err(bad(format!(
            "frame length {len} != payload bytes {}",
            json.len()
        )));
    }
    Ok(Some(json.to_string()))
}

/// Extracts an unsigned integer field from a flat JSON object (the
/// stream's frames are flat by construction). Returns `None` when the
/// key is absent or non-numeric.
pub fn frame_u64(json: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let rest = &json[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts a string field from a flat JSON object (no escape handling:
/// the stream never emits escaped strings).
pub fn frame_str<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let at = json.find(&pat)? + pat.len();
    let rest = &json[at..];
    rest.split('"').next()
}

/// Shared in-memory sink for tests: a [`TelemetryStream`] writing into a
/// buffer the test can read back.
#[derive(Debug, Clone, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// A new empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies out everything written so far.
    pub fn contents(&self) -> Vec<u8> {
        self.0.lock().expect("shared buf lock").clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .expect("shared buf lock")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn frames(buf: &SharedBuf) -> Vec<String> {
        let bytes = buf.contents();
        let mut r = BufReader::new(&bytes[..]);
        let mut out = Vec::new();
        while let Some(json) = read_frame(&mut r).expect("well-formed frame") {
            out.push(json);
        }
        out
    }

    #[test]
    fn disabled_stream_is_inert() {
        let s = TelemetryStream::disabled();
        assert!(!s.is_enabled());
        assert_eq!(s.client_count(), 0);
        s.send_run_start(0, "w", "p", 1); // must not panic
    }

    #[test]
    fn hello_then_monotone_seq() {
        let buf = SharedBuf::new();
        let s = TelemetryStream::to_writer(buf.clone());
        s.send_run_start(0, "trade2", "combined", 100);
        s.send_run_end(0, 4242, 17);
        let got = frames(&buf);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], hello_json());
        assert_eq!(frame_str(&got[0], "schema"), Some(STREAM_SCHEMA));
        for (i, f) in got.iter().enumerate() {
            assert_eq!(frame_u64(f, "seq"), Some(i as u64), "{f}");
        }
        assert_eq!(frame_str(&got[1], "type"), Some("run_start"));
        assert_eq!(frame_u64(&got[2], "cycles"), Some(4242));
    }

    #[test]
    fn clones_share_the_sequence() {
        let buf = SharedBuf::new();
        let a = TelemetryStream::to_writer(buf.clone());
        let b = a.clone();
        a.send_run_end(0, 1, 1);
        b.send_run_end(1, 2, 2);
        let got = frames(&buf);
        assert_eq!(frame_u64(&got[1], "seq"), Some(1));
        assert_eq!(frame_u64(&got[2], "seq"), Some(2));
        assert_eq!(frame_u64(&got[2], "cell"), Some(1));
    }

    #[test]
    fn interval_frames_carry_counter_deltas() {
        let buf = SharedBuf::new();
        let s = TelemetryStream::to_writer(buf.clone());
        let rec = IntervalRecord {
            start: 0,
            end: 1000,
            counters: vec![("l2_misses", 42)],
        };
        s.send_interval(3, &rec);
        let got = frames(&buf);
        assert_eq!(frame_str(&got[1], "type"), Some("interval"));
        assert_eq!(frame_u64(&got[1], "l2_misses"), Some(42));
        assert_eq!(frame_u64(&got[1], "cell"), Some(3));
    }

    #[test]
    fn decision_frames_carry_cumulative_counters() {
        let buf = SharedBuf::new();
        let s = TelemetryStream::to_writer(buf.clone());
        let f = DecisionFrame {
            cycle: 9_000,
            decisions: 12,
            aborts: 5,
            aborts_correct: 3,
            aborts_mispredicted: 1,
            allows_redundant: 2,
            snarfs: 4,
            snarfs_useful: 2,
            snarfs_wasted: 1,
            engaged: true,
        };
        s.send_decision(7, &f);
        let got = frames(&buf);
        assert_eq!(frame_str(&got[1], "type"), Some("decision"));
        assert_eq!(frame_u64(&got[1], "cell"), Some(7));
        assert_eq!(frame_u64(&got[1], "cycle"), Some(9_000));
        assert_eq!(frame_u64(&got[1], "aborts_correct"), Some(3));
        assert_eq!(frame_u64(&got[1], "snarfs_useful"), Some(2));
        assert_eq!(frame_u64(&got[1], "engaged"), Some(1));
        // Disabled stream: inert.
        TelemetryStream::disabled().send_decision(0, &f);
    }

    #[test]
    fn read_frame_rejects_length_mismatch() {
        let mut r = BufReader::new(&b"5 {}\n"[..]);
        assert!(read_frame(&mut r).is_err());
        let mut r = BufReader::new(&b"nope {}\n"[..]);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn unix_socket_replays_hello_to_late_client() {
        let dir = std::env::temp_dir().join(format!("cmpsim-stream-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.sock");
        let s = TelemetryStream::listen_unix(&path).expect("bind");
        // Frames sent before any client attaches are simply dropped.
        s.send_run_start(0, "w", "p", 1);
        let sock = std::os::unix::net::UnixStream::connect(&path).expect("connect");
        // Wait for the accept thread to register the client.
        for _ in 0..200 {
            if s.client_count() == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(s.client_count(), 1);
        s.send_run_end(0, 99, 7);
        drop(s); // closes the writer side and unlinks the socket
        let mut r = BufReader::new(sock);
        let hello = read_frame(&mut r).unwrap().expect("hello frame");
        assert_eq!(frame_str(&hello, "schema"), Some(STREAM_SCHEMA));
        let end = read_frame(&mut r).unwrap().expect("run_end frame");
        assert_eq!(frame_str(&end, "type"), Some("run_end"));
        assert_eq!(frame_u64(&end, "cycles"), Some(99));
        assert!(!path.exists(), "socket file unlinked on drop");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
