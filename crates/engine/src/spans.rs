//! Transaction span tracing: where did the cycles of one miss go?
//!
//! The telemetry layer ([`crate::telemetry`]) records *point* events; this
//! module records *spans*: one record per sampled bus transaction (miss,
//! upgrade, or castout), decomposed into cycle-stamped phases from issue to
//! fill/squash. A span is a start cycle plus an ordered list of phase
//! *marks*; each mark closes the segment opened by the previous one, so the
//! segments tile `[start, end]` exactly and
//! `queue_wait + service == total` holds for every span by construction.
//!
//! The [`SpanTracer`] handle follows the same zero-cost-when-off contract
//! as [`crate::telemetry::Telemetry`]: a disabled tracer is a `None` and
//! every call site pays a single branch. Sampling (`1/N` by span id) bounds
//! memory on long runs while keeping the kept population deterministic.
//!
//! # Example
//!
//! ```
//! use cmpsim_engine::spans::{SpanKind, SpanOutcome, SpanPhase, SpanTracer};
//! use cmpsim_engine::telemetry::FillSource;
//!
//! let tracer = SpanTracer::sampled(1);
//! tracer.start(7, SpanKind::Miss, 0, 0x40, 100);
//! tracer.mark(7, SpanPhase::MshrAlloc, 103);
//! tracer.mark(7, SpanPhase::RingTransit, 120);
//! tracer.mark(7, SpanPhase::MemQueue, 150);
//! tracer.mark(7, SpanPhase::MemService, 470);
//! tracer.mark(7, SpanPhase::DataReturn, 531);
//! tracer.finish(7, SpanOutcome::Filled(FillSource::Memory), 531);
//! let spans = tracer.finished_spans();
//! assert_eq!(spans[0].total(), 431);
//! assert_eq!(spans[0].queue_wait() + spans[0].service(), 431);
//! ```

use std::collections::HashMap;
use std::fmt;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use crate::metrics::MetricsRegistry;
use crate::stats::Log2Histogram;
use crate::telemetry::FillSource;
use crate::Cycle;

/// Identifies one traced transaction; the simulator uses the bus
/// transaction id, which is unique for the life of a run.
pub type SpanId = u64;

/// What kind of transaction a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A read-class L2 miss (ReadShared / ReadExclusive).
    Miss,
    /// An ownership upgrade (no data transfer).
    Upgrade,
    /// A castout (write-back) of a victim line.
    Castout,
}

impl SpanKind {
    /// Stable lower-case tag used in the Chrome trace export.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Miss => "miss",
            SpanKind::Upgrade => "upgrade",
            SpanKind::Castout => "castout",
        }
    }
}

/// One phase of a transaction's lifecycle. A mark with a phase closes the
/// segment that began at the previous mark (or at the span start).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// Miss detection to bus issue (MSHR allocation + issue delay).
    MshrAlloc,
    /// Castout drain pick to bus issue.
    Issue,
    /// Waiting for the ring's address-phase arbitration slot.
    RingArb,
    /// Address beat on the ring.
    RingTransit,
    /// Snoop broadcast, per-agent snoop, and combined-response window.
    SnoopWindow,
    /// Back-off between a Retry combined response and the re-issue.
    RetryBackoff,
    /// Waiting for the providing peer L2's array port.
    PeerQueue,
    /// Peer L2 array read (intervention data access).
    PeerService,
    /// Waiting for a free L3 array bank.
    L3Queue,
    /// L3 array access.
    L3Service,
    /// Waiting for a free memory bank.
    MemQueue,
    /// Memory access.
    MemService,
    /// Data transfer back to the consumer (ring/link occupancy plus any
    /// wait for the combined response to reach the requester).
    DataReturn,
    /// Implicit tail segment closed by [`SpanTracer::finish`] when the
    /// outcome lands after the last recorded mark (e.g. a transaction
    /// resolved locally without a data phase).
    Resolve,
}

impl SpanPhase {
    /// Stable lower-case tag used in the Chrome trace export.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanPhase::MshrAlloc => "mshr_alloc",
            SpanPhase::Issue => "issue",
            SpanPhase::RingArb => "ring_arb",
            SpanPhase::RingTransit => "ring_transit",
            SpanPhase::SnoopWindow => "snoop_window",
            SpanPhase::RetryBackoff => "retry_backoff",
            SpanPhase::PeerQueue => "peer_queue",
            SpanPhase::PeerService => "peer_service",
            SpanPhase::L3Queue => "l3_queue",
            SpanPhase::L3Service => "l3_service",
            SpanPhase::MemQueue => "mem_queue",
            SpanPhase::MemService => "mem_service",
            SpanPhase::DataReturn => "data_return",
            SpanPhase::Resolve => "resolve",
        }
    }

    /// Queue-wait phases are time spent *waiting for* a contended
    /// resource; everything else is service (useful work or fixed
    /// protocol latency).
    pub fn is_queue_wait(self) -> bool {
        matches!(
            self,
            SpanPhase::RingArb
                | SpanPhase::RetryBackoff
                | SpanPhase::PeerQueue
                | SpanPhase::L3Queue
                | SpanPhase::MemQueue
        )
    }
}

impl fmt::Display for SpanPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// A miss filled with data from `FillSource`.
    Filled(FillSource),
    /// An upgrade was granted (no data moved).
    Upgraded,
    /// Resolved locally without a bus data phase (e.g. a racing fill
    /// satisfied the miss before issue, or the castout entry was claimed).
    ResolvedLocal,
    /// Castout squashed (a valid copy already exists in the L3 or a peer).
    Squashed,
    /// Castout absorbed by a peer L2 (snarf).
    Snarfed,
    /// Castout accepted by the L3 victim cache.
    AcceptedL3,
}

impl SpanOutcome {
    /// Stable lower-case tag used in the Chrome trace export.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanOutcome::Filled(FillSource::L2Peer) => "fill_l2_peer",
            SpanOutcome::Filled(FillSource::L3) => "fill_l3",
            SpanOutcome::Filled(FillSource::Memory) => "fill_memory",
            SpanOutcome::Upgraded => "upgrade",
            SpanOutcome::ResolvedLocal => "local",
            SpanOutcome::Squashed => "squashed",
            SpanOutcome::Snarfed => "snarfed",
            SpanOutcome::AcceptedL3 => "accepted_l3",
        }
    }

    /// The fill source, when this outcome is a data fill.
    pub fn fill_source(self) -> Option<FillSource> {
        match self {
            SpanOutcome::Filled(s) => Some(s),
            _ => None,
        }
    }
}

/// One completed (or in-flight) transaction span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id (== bus transaction id).
    pub id: SpanId,
    /// Transaction kind.
    pub kind: SpanKind,
    /// Index of the requesting/casting L2.
    pub l2: u32,
    /// Raw line address.
    pub line: u64,
    /// Cycle the transaction was created.
    pub start: Cycle,
    /// Phase marks; each entry closes the segment opened by the previous
    /// one (or by `start`). Cycle stamps are non-decreasing.
    pub marks: Vec<(SpanPhase, Cycle)>,
    /// Set once the span is finished.
    pub outcome: Option<SpanOutcome>,
}

impl SpanRecord {
    fn new(id: SpanId, kind: SpanKind, l2: u32, line: u64, start: Cycle) -> Self {
        SpanRecord {
            id,
            kind,
            l2,
            line,
            start,
            marks: Vec::with_capacity(8),
            outcome: None,
        }
    }

    /// Cycle of the most recent mark (the span start before any mark).
    pub fn last_cycle(&self) -> Cycle {
        self.marks.last().map_or(self.start, |&(_, t)| t)
    }

    /// Records a phase transition at `at`, closing the current segment.
    ///
    /// Marks must be monotone in cycle time; a violation is a simulator
    /// bug and trips a debug assertion. Release builds clamp instead so a
    /// trace is still internally consistent.
    pub fn mark(&mut self, phase: SpanPhase, at: Cycle) {
        let last = self.last_cycle();
        debug_assert!(
            at >= last,
            "span {} phase {} at cycle {} precedes previous mark at {}",
            self.id,
            phase,
            at,
            last
        );
        self.marks.push((phase, at.max(last)));
    }

    /// End cycle: the last mark (== `start` for an empty span).
    pub fn end(&self) -> Cycle {
        self.last_cycle()
    }

    /// Total latency in cycles.
    pub fn total(&self) -> Cycle {
        self.end() - self.start
    }

    /// `(phase, segment_start, segment_len)` for each recorded segment.
    pub fn segments(&self) -> impl Iterator<Item = (SpanPhase, Cycle, Cycle)> + '_ {
        let mut prev = self.start;
        self.marks.iter().map(move |&(phase, t)| {
            let seg = (phase, prev, t - prev);
            prev = t;
            seg
        })
    }

    /// Cycles spent in queue-wait phases (see
    /// [`SpanPhase::is_queue_wait`]).
    pub fn queue_wait(&self) -> Cycle {
        self.segments()
            .filter(|(p, _, _)| p.is_queue_wait())
            .map(|(_, _, len)| len)
            .sum()
    }

    /// Cycles spent in service phases: always `total() - queue_wait()`.
    pub fn service(&self) -> Cycle {
        self.total() - self.queue_wait()
    }
}

/// Latency breakdown histograms for one population of spans.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SourceLatency {
    /// End-to-end span latency.
    pub total: Log2Histogram,
    /// Queue-wait portion.
    pub queue_wait: Log2Histogram,
    /// Service portion.
    pub service: Log2Histogram,
}

impl SourceLatency {
    fn add(&mut self, span: &SpanRecord) {
        self.total.add(span.total());
        self.queue_wait.add(span.queue_wait());
        self.service.add(span.service());
    }
}

/// Aggregated view of all finished spans, ready for metrics export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanSummary {
    /// Spans started (before sampling).
    pub started: u64,
    /// Spans kept by sampling and finished.
    pub recorded: u64,
    /// Spans dropped by the `1/N` sampler.
    pub sampled_out: u64,
    /// Misses filled by a peer L2 intervention.
    pub l2_peer: SourceLatency,
    /// Misses filled from the L3.
    pub l3: SourceLatency,
    /// Misses filled from memory.
    pub memory: SourceLatency,
    /// All castout spans (squashed, snarfed, or accepted).
    pub castout: SourceLatency,
}

impl SpanSummary {
    /// Registers the summary under `span_*` names in a metrics registry,
    /// so the breakdown rides the shared `--json`/`--csv` export path.
    pub fn register_into(&self, m: &mut MetricsRegistry) {
        m.set_counter("spans_started", self.started);
        m.set_counter("spans_recorded", self.recorded);
        m.set_counter("spans_sampled_out", self.sampled_out);
        let groups = [
            ("span_l2_peer", &self.l2_peer),
            ("span_l3", &self.l3),
            ("span_memory", &self.memory),
            ("span_castout", &self.castout),
        ];
        for (name, lat) in groups {
            m.set_histogram(&format!("{name}_total"), &lat.total);
            m.set_histogram(&format!("{name}_queue_wait"), &lat.queue_wait);
            m.set_histogram(&format!("{name}_service"), &lat.service);
        }
    }
}

#[derive(Debug, Default)]
struct SpanBook {
    sample: u64,
    active: HashMap<SpanId, SpanRecord>,
    finished: Vec<SpanRecord>,
    started: u64,
    sampled_out: u64,
}

/// Cheap-to-clone handle for recording transaction spans.
///
/// A disabled tracer holds no book: every `start`/`mark`/`finish` call is
/// a single `Option` branch, preserving the zero-cost-when-off property of
/// the telemetry layer. Clones share one book, mirroring how
/// [`crate::telemetry::Telemetry`] clones share one sink.
#[derive(Debug, Clone, Default)]
pub struct SpanTracer {
    book: Option<Arc<Mutex<SpanBook>>>,
}

impl SpanTracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        SpanTracer { book: None }
    }

    /// A tracer keeping every `sample`-th span (by span id). `sampled(1)`
    /// keeps everything.
    ///
    /// # Panics
    ///
    /// Panics if `sample` is zero.
    pub fn sampled(sample: u64) -> Self {
        assert!(sample > 0, "span sample divisor must be at least 1");
        SpanTracer {
            book: Some(Arc::new(Mutex::new(SpanBook {
                sample,
                ..SpanBook::default()
            }))),
        }
    }

    /// Whether spans are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.book.is_some()
    }

    /// Opens a span for transaction `id` at cycle `now`. A span dropped by
    /// the sampler is counted and ignored by later `mark`/`finish` calls.
    #[inline]
    pub fn start(&self, id: SpanId, kind: SpanKind, l2: u32, line: u64, now: Cycle) {
        if let Some(book) = &self.book {
            let mut book = book.lock().unwrap();
            book.started += 1;
            if !id.is_multiple_of(book.sample) {
                book.sampled_out += 1;
                return;
            }
            book.active
                .insert(id, SpanRecord::new(id, kind, l2, line, now));
        }
    }

    /// Records a phase transition for span `id`; a no-op for unknown or
    /// sampled-out ids.
    #[inline]
    pub fn mark(&self, id: SpanId, phase: SpanPhase, at: Cycle) {
        if let Some(book) = &self.book {
            if let Some(rec) = book.lock().unwrap().active.get_mut(&id) {
                rec.mark(phase, at);
            }
        }
    }

    /// Closes span `id` with `outcome` at cycle `at`. If `at` lies beyond
    /// the last mark, the gap is recorded as a [`SpanPhase::Resolve`]
    /// segment so the telescoping invariant survives.
    #[inline]
    pub fn finish(&self, id: SpanId, outcome: SpanOutcome, at: Cycle) {
        if let Some(book) = &self.book {
            let mut book = book.lock().unwrap();
            if let Some(mut rec) = book.active.remove(&id) {
                if at > rec.last_cycle() {
                    rec.mark(SpanPhase::Resolve, at);
                }
                rec.outcome = Some(outcome);
                book.finished.push(rec);
            }
        }
    }

    /// Clones out every finished span, in finish order.
    pub fn finished_spans(&self) -> Vec<SpanRecord> {
        match &self.book {
            Some(book) => book.lock().unwrap().finished.clone(),
            None => Vec::new(),
        }
    }

    /// Aggregates finished spans into per-fill-source latency histograms.
    pub fn summary(&self) -> SpanSummary {
        let mut s = SpanSummary::default();
        let Some(book) = &self.book else {
            return s;
        };
        let book = book.lock().unwrap();
        s.started = book.started;
        s.sampled_out = book.sampled_out;
        s.recorded = book.finished.len() as u64;
        for span in &book.finished {
            match span.outcome {
                Some(SpanOutcome::Filled(FillSource::L2Peer)) => s.l2_peer.add(span),
                Some(SpanOutcome::Filled(FillSource::L3)) => s.l3.add(span),
                Some(SpanOutcome::Filled(FillSource::Memory)) => s.memory.add(span),
                _ if span.kind == SpanKind::Castout => s.castout.add(span),
                _ => {}
            }
        }
        s
    }

    /// Writes every finished span as Chrome trace-event JSON (see
    /// [`write_chrome_trace`]).
    pub fn write_chrome_trace<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write_chrome_trace(&self.finished_spans(), w)
    }
}

fn push_event(
    lines: &mut Vec<String>,
    name: &str,
    ts: Cycle,
    dur: Cycle,
    pid: u32,
    tid: SpanId,
    args: &str,
) {
    lines.push(format!(
        "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\
         \"pid\":{pid},\"tid\":{tid},\"args\":{{{args}}}}}"
    ));
}

/// Serialises spans in the Chrome trace-event format (a JSON array of
/// `"ph":"X"` complete events), loadable in `chrome://tracing` and
/// <https://ui.perfetto.dev>. Timestamps are in cycles (displayed as µs by
/// the viewers). Each span gets its own track (`tid` = span id) inside the
/// originating L2's process group (`pid` = L2 index); one enclosing event
/// carries the outcome and the queue-wait/service split, with one nested
/// event per phase segment. One event per line, so the output is both
/// strictly valid JSON and trivially greppable.
pub fn write_chrome_trace<W: Write>(spans: &[SpanRecord], w: &mut W) -> io::Result<()> {
    write_chrome_trace_with(spans, &[], w)
}

/// Like [`write_chrome_trace`], with extra pre-rendered trace-event
/// lines appended to the same JSON array — used to merge the host
/// profiler's counter track
/// ([`crate::profiler::chrome_host_events`]) into one timeline with the
/// simulated spans.
pub fn write_chrome_trace_with<W: Write>(
    spans: &[SpanRecord],
    extra: &[String],
    w: &mut W,
) -> io::Result<()> {
    let mut lines: Vec<String> = Vec::new();
    let mut l2s: Vec<u32> = spans.iter().map(|s| s.l2).collect();
    l2s.sort_unstable();
    l2s.dedup();
    for l2 in l2s {
        lines.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{l2},\"tid\":0,\
             \"args\":{{\"name\":\"L2#{l2}\"}}}}"
        ));
    }
    for span in spans {
        let outcome = span.outcome.map_or("open", SpanOutcome::as_str);
        let args = format!(
            "\"span\":{},\"line\":{},\"outcome\":\"{}\",\"queue_wait\":{},\"service\":{}",
            span.id,
            span.line,
            outcome,
            span.queue_wait(),
            span.service()
        );
        push_event(
            &mut lines,
            span.kind.as_str(),
            span.start,
            span.total(),
            span.l2,
            span.id,
            &args,
        );
        for (phase, seg_start, seg_len) in span.segments() {
            let class = if phase.is_queue_wait() {
                "queue"
            } else {
                "service"
            };
            let args = format!("\"span\":{},\"class\":\"{class}\"", span.id);
            push_event(
                &mut lines,
                phase.as_str(),
                seg_start,
                seg_len,
                span.l2,
                span.id,
                &args,
            );
        }
    }
    lines.extend(extra.iter().cloned());
    writeln!(w, "[")?;
    for (i, line) in lines.iter().enumerate() {
        let sep = if i + 1 < lines.len() { "," } else { "" };
        writeln!(w, "{line}{sep}")?;
    }
    writeln!(w, "]")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_span() -> SpanRecord {
        let mut s = SpanRecord::new(3, SpanKind::Miss, 1, 0x40, 100);
        s.mark(SpanPhase::MshrAlloc, 103);
        s.mark(SpanPhase::RingArb, 110);
        s.mark(SpanPhase::RingTransit, 112);
        s.mark(SpanPhase::SnoopWindow, 140);
        s.mark(SpanPhase::L3Queue, 155);
        s.mark(SpanPhase::L3Service, 231);
        s.mark(SpanPhase::DataReturn, 267);
        s.outcome = Some(SpanOutcome::Filled(FillSource::L3));
        s
    }

    #[test]
    fn segments_tile_the_span() {
        let s = sample_span();
        assert_eq!(s.total(), 167);
        let seg_sum: Cycle = s.segments().map(|(_, _, len)| len).sum();
        assert_eq!(seg_sum, s.total());
        assert_eq!(s.queue_wait(), 7 + 15); // ring_arb + l3_queue
        assert_eq!(s.queue_wait() + s.service(), s.total());
    }

    #[test]
    fn segments_report_starts_in_order() {
        let s = sample_span();
        let mut prev_end = s.start;
        for (_, seg_start, len) in s.segments() {
            assert_eq!(seg_start, prev_end);
            prev_end = seg_start + len;
        }
        assert_eq!(prev_end, s.end());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "precedes previous mark")]
    fn non_monotone_mark_trips_debug_assert() {
        let mut s = SpanRecord::new(1, SpanKind::Miss, 0, 0, 100);
        s.mark(SpanPhase::MshrAlloc, 110);
        s.mark(SpanPhase::RingTransit, 105);
    }

    #[test]
    fn tracer_lifecycle_and_summary() {
        let tracer = SpanTracer::sampled(1);
        assert!(tracer.is_enabled());
        tracer.start(1, SpanKind::Miss, 0, 0x80, 10);
        tracer.mark(1, SpanPhase::MshrAlloc, 13);
        tracer.mark(1, SpanPhase::MemQueue, 20);
        tracer.mark(1, SpanPhase::MemService, 340);
        tracer.mark(1, SpanPhase::DataReturn, 441);
        tracer.finish(1, SpanOutcome::Filled(FillSource::Memory), 441);
        tracer.start(2, SpanKind::Castout, 1, 0xc0, 50);
        tracer.mark(2, SpanPhase::Issue, 51);
        tracer.mark(2, SpanPhase::SnoopWindow, 90);
        tracer.finish(2, SpanOutcome::Squashed, 90);
        let s = tracer.summary();
        assert_eq!(s.started, 2);
        assert_eq!(s.recorded, 2);
        assert_eq!(s.memory.total.count(), 1);
        assert_eq!(s.memory.total.mean(), 431.0);
        assert_eq!(s.castout.total.count(), 1);
    }

    #[test]
    fn finish_beyond_last_mark_adds_resolve_tail() {
        let tracer = SpanTracer::sampled(1);
        tracer.start(1, SpanKind::Miss, 0, 0, 10);
        tracer.finish(1, SpanOutcome::ResolvedLocal, 25);
        let spans = tracer.finished_spans();
        assert_eq!(spans[0].marks, vec![(SpanPhase::Resolve, 25)]);
        assert_eq!(spans[0].total(), 15);
    }

    #[test]
    fn sampler_keeps_every_nth_id() {
        let tracer = SpanTracer::sampled(4);
        for id in 0..16 {
            tracer.start(id, SpanKind::Miss, 0, 0, 0);
            tracer.finish(id, SpanOutcome::ResolvedLocal, 5);
        }
        let s = tracer.summary();
        assert_eq!(s.started, 16);
        assert_eq!(s.recorded, 4); // ids 0, 4, 8, 12
        assert_eq!(s.sampled_out, 12);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = SpanTracer::disabled();
        assert!(!tracer.is_enabled());
        tracer.start(1, SpanKind::Miss, 0, 0, 10);
        tracer.mark(1, SpanPhase::MshrAlloc, 12);
        tracer.finish(1, SpanOutcome::ResolvedLocal, 12);
        assert!(tracer.finished_spans().is_empty());
        assert_eq!(tracer.summary(), SpanSummary::default());
    }

    #[test]
    fn clones_share_one_book() {
        let tracer = SpanTracer::sampled(1);
        let clone = tracer.clone();
        clone.start(9, SpanKind::Upgrade, 2, 0x100, 7);
        clone.finish(9, SpanOutcome::Upgraded, 30);
        assert_eq!(tracer.finished_spans().len(), 1);
    }

    #[test]
    fn chrome_trace_is_valid_json_one_event_per_line() {
        let spans = vec![sample_span()];
        let mut buf = Vec::new();
        write_chrome_trace(&spans, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("[\n"));
        assert!(text.ends_with("]\n"));
        assert_eq!(text.matches('[').count(), text.matches(']').count());
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('"').count() % 2, 0);
        // 1 metadata + 1 enclosing + 7 phase events; all but the last
        // event line comma-terminated, so the array is strict JSON.
        let events: Vec<&str> = text.lines().filter(|l| l.starts_with('{')).collect();
        assert_eq!(events.len(), 9);
        for e in &events[..events.len() - 1] {
            assert!(e.ends_with("},") || e.ends_with('}'), "{e}");
        }
        assert!(events.last().unwrap().ends_with('}'));
        assert!(text.contains("\"name\":\"miss\""));
        assert!(text.contains("\"outcome\":\"fill_l3\""));
        assert!(text.contains("\"name\":\"l3_queue\""));
        assert!(text.contains("\"class\":\"queue\""));
    }

    #[test]
    fn chrome_trace_with_extra_track_stays_valid_json() {
        let spans = vec![sample_span()];
        let extra = vec![
            "{\"name\":\"host_stage_us\",\"ph\":\"C\",\"ts\":10,\"pid\":9999,\
             \"args\":{\"frontend\":3}}"
                .to_string(),
        ];
        let mut buf = Vec::new();
        write_chrome_trace_with(&spans, &extra, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        // The extra track lands inside the array: the last event line is
        // the host counter, un-comma'd, and its predecessor gained one.
        let events: Vec<&str> = text.lines().filter(|l| l.starts_with('{')).collect();
        assert_eq!(events.len(), 10);
        assert!(events.last().unwrap().contains("host_stage_us"));
        assert!(events.last().unwrap().ends_with('}'));
        assert!(events[events.len() - 2].ends_with("},"));
    }

    #[test]
    fn chrome_trace_phase_durations_sum_to_span() {
        let spans = vec![sample_span()];
        let mut buf = Vec::new();
        write_chrome_trace(&spans, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let dur_of = |line: &str| -> u64 {
            let at = line.find("\"dur\":").unwrap() + 6;
            line[at..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .unwrap()
        };
        let mut total = None;
        let mut phase_sum = 0;
        for line in text.lines().filter(|l| l.contains("\"ph\":\"X\"")) {
            if line.contains("\"name\":\"miss\"") {
                total = Some(dur_of(line));
            } else {
                phase_sum += dur_of(line);
            }
        }
        assert_eq!(total, Some(phase_sum));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// For any monotone mark sequence, segments tile the span and
            /// the queue-wait/service split telescopes to the total.
            #[test]
            fn telescoping_holds_for_monotone_marks(
                start in 0u64..1_000,
                deltas in proptest::collection::vec((0u64..500, 0usize..14), 0..12),
            ) {
                let phases = [
                    SpanPhase::MshrAlloc, SpanPhase::Issue, SpanPhase::RingArb,
                    SpanPhase::RingTransit, SpanPhase::SnoopWindow,
                    SpanPhase::RetryBackoff, SpanPhase::PeerQueue,
                    SpanPhase::PeerService, SpanPhase::L3Queue,
                    SpanPhase::L3Service, SpanPhase::MemQueue,
                    SpanPhase::MemService, SpanPhase::DataReturn,
                    SpanPhase::Resolve,
                ];
                let mut rec = SpanRecord::new(1, SpanKind::Miss, 0, 0, start);
                let mut t = start;
                for (delta, phase_idx) in deltas {
                    t += delta;
                    rec.mark(phases[phase_idx], t);
                }
                prop_assert_eq!(rec.end(), t);
                prop_assert_eq!(rec.queue_wait() + rec.service(), rec.total());
                let seg_sum: Cycle = rec.segments().map(|(_, _, len)| len).sum();
                prop_assert_eq!(seg_sum, rec.total());
                // Marks are monotone as recorded.
                let mut prev = rec.start;
                for &(_, at) in &rec.marks {
                    prop_assert!(at >= prev);
                    prev = at;
                }
            }

            /// Any strictly decreasing stamp trips the monotonicity debug
            /// assertion (the satellite's enforced ordering contract).
            #[test]
            #[cfg(debug_assertions)]
            fn decreasing_mark_panics(first in 1u64..10_000, back in 1u64..1_000) {
                let mut rec = SpanRecord::new(1, SpanKind::Miss, 0, 0, 0);
                rec.mark(SpanPhase::MshrAlloc, first);
                let bad = first.saturating_sub(back);
                prop_assert!(
                    std::panic::catch_unwind(move || rec.mark(SpanPhase::RingTransit, bad))
                        .is_err()
                );
            }
        }
    }
}
