//! Event tracing and interval sampling for the simulator.
//!
//! Three pieces:
//!
//! * [`SimEvent`] — the typed vocabulary of things the simulator can
//!   report (misses, fills, castout outcomes, policy decisions, retries).
//! * [`EventSink`] / [`Telemetry`] — where events go. [`Telemetry`] is a
//!   cheap cloneable handle every component holds; when tracing is
//!   disabled it is a `None` and [`Telemetry::emit`] never constructs the
//!   event (the closure is not called), so the hot path pays one branch.
//! * [`IntervalSampler`] — snapshots cumulative counters every N cycles
//!   into a per-interval time series for phase plots (the paper's
//!   adaptive mechanisms are windowed; end-of-run aggregates hide when a
//!   policy engaged).
//!
//! Events serialize to JSON Lines (one object per line, `t` = cycle):
//!
//! ```text
//! {"t":10452,"type":"wbht_predict","l2":3,"line":88211,"engaged":true,"abort":true,"correct":true}
//! ```
//!
//! # Example
//!
//! ```
//! use cmpsim_engine::telemetry::{SimEvent, Telemetry, VecSink};
//!
//! let (t, sink) = Telemetry::with_vec_sink();
//! t.emit(42, || SimEvent::RetrySwitchFlip {
//!     engaged: true,
//!     window_retries: 600,
//!     threshold: 500,
//! });
//! assert_eq!(sink.lock().unwrap().events().len(), 1);
//!
//! let off = Telemetry::disabled();
//! off.emit(43, || unreachable!("closure never runs when disabled"));
//! ```

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::Cycle;

/// Where a demand fill's data came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillSource {
    /// Intervened by a peer L2 holding the line.
    L2Peer,
    /// Hit in the shared L3 victim cache.
    L3,
    /// Fetched from off-chip memory.
    Memory,
}

impl FillSource {
    fn as_str(self) -> &'static str {
        match self {
            FillSource::L2Peer => "l2_peer",
            FillSource::L3 => "l3",
            FillSource::Memory => "memory",
        }
    }
}

/// Why a castout was squashed on the bus instead of reaching the L3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SquashReason {
    /// The L3 already held a valid copy of the line.
    AlreadyInL3,
    /// A peer L2 still holds the line, so the hierarchy keeps its copy.
    PeerHasCopy,
}

impl SquashReason {
    fn as_str(self) -> &'static str {
        match self {
            SquashReason::AlreadyInL3 => "already_in_l3",
            SquashReason::PeerHasCopy => "peer_has_copy",
        }
    }
}

/// Which full L3 resource forced a requester to retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L3RetryReason {
    /// The read-request queue was full.
    ReadQueueFull,
    /// The castout data-in queue was full.
    DataInFull,
    /// No castout buffer slot was free.
    CastoutBufferFull,
}

impl L3RetryReason {
    fn as_str(self) -> &'static str {
        match self {
            L3RetryReason::ReadQueueFull => "read_queue_full",
            L3RetryReason::DataInFull => "data_in_full",
            L3RetryReason::CastoutBufferFull => "castout_buffer_full",
        }
    }
}

/// One typed simulator event.
///
/// `l2` fields are L2 slice indices; `line` fields are line addresses.
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// A reference missed in an L2 slice and a fill was requested.
    L2Miss {
        /// Requesting L2 slice.
        l2: u32,
        /// Missing line address.
        line: u64,
        /// True for stores.
        store: bool,
    },
    /// A demand miss completed and the line was filled into the L2.
    L2Fill {
        /// Filled L2 slice.
        l2: u32,
        /// Filled line address.
        line: u64,
        /// Where the data came from.
        source: FillSource,
        /// Miss latency in cycles.
        latency: Cycle,
    },
    /// A write-back left an L2's write-back queue for the bus.
    CastoutIssued {
        /// Issuing L2 slice.
        l2: u32,
        /// Castout line address.
        line: u64,
        /// True for dirty (modified) lines.
        dirty: bool,
        /// True when peers may snarf this castout.
        snarf_eligible: bool,
    },
    /// The WBHT aborted a clean castout before it used the bus.
    CastoutAborted {
        /// Aborting L2 slice.
        l2: u32,
        /// Aborted line address.
        line: u64,
    },
    /// A castout used the bus but was squashed before entering the L3.
    CastoutSquashed {
        /// Issuing L2 slice.
        l2: u32,
        /// Squashed line address.
        line: u64,
        /// Why it was squashed.
        reason: SquashReason,
    },
    /// A peer L2 snarfed a castout instead of the L3 accepting it.
    CastoutSnarfed {
        /// Issuing L2 slice.
        l2: u32,
        /// Receiving (snarfing) L2 slice.
        by: u32,
        /// Snarfed line address.
        line: u64,
    },
    /// The L3 accepted a castout.
    CastoutAccepted {
        /// Issuing L2 slice.
        l2: u32,
        /// Accepted line address.
        line: u64,
    },
    /// A store to a shared line completed as an update instead of an
    /// invalidation (hybrid update/invalidate coherence).
    CoherenceUpdate {
        /// Writing L2 slice.
        l2: u32,
        /// Updated line address.
        line: u64,
    },
    /// The WBHT allocated (or refreshed) an entry for a redundant line.
    WbhtAllocate {
        /// Allocating L2 slice.
        l2: u32,
        /// Line the entry covers.
        line: u64,
    },
    /// The WBHT was consulted for a clean castout.
    WbhtPredict {
        /// Consulting L2 slice.
        l2: u32,
        /// Line consulted.
        line: u64,
        /// Whether the retry switch currently engages the WBHT.
        engaged: bool,
        /// The decision taken: true = abort the castout.
        abort: bool,
        /// Whether the decision matched L3 residency (ground truth).
        correct: bool,
    },
    /// A WBHT consult turned out wrong (redundant line sent, or a needed
    /// write-back suppressed).
    WbhtMispredict {
        /// Consulting L2 slice.
        l2: u32,
        /// Mispredicted line.
        line: u64,
        /// The (wrong) decision that was taken: true = aborted.
        abort: bool,
    },
    /// The retry-rate switch flipped at a window boundary.
    RetrySwitchFlip {
        /// New state: true = WBHT aborts engaged.
        engaged: bool,
        /// Retries observed in the window that just closed.
        window_retries: u64,
        /// The flip threshold.
        threshold: u64,
    },
    /// A snarf-eligible castout was arbitrated among peer L2s.
    SnarfArbitration {
        /// Issuing L2 slice.
        l2: u32,
        /// Castout line address.
        line: u64,
        /// The winning peer, if any accepted the line.
        winner: Option<u32>,
    },
    /// A peer declined a snarf because no snarf buffer slot was free.
    SnarfBufferDeclined {
        /// Declining L2 slice.
        l2: u32,
        /// Line that could not be buffered.
        line: u64,
    },
    /// The L3 bounced a request because a resource was full.
    L3Retry {
        /// Which resource was full.
        reason: L3RetryReason,
        /// Line whose request bounced.
        line: u64,
    },
    /// One closed interval-sampler window (cycle range plus per-interval
    /// counter deltas).
    Interval {
        /// Window start cycle (inclusive).
        start: Cycle,
        /// Window end cycle (exclusive).
        end: Cycle,
        /// Counter deltas over the window, in registration order.
        counters: Vec<(&'static str, u64)>,
    },
}

impl SimEvent {
    /// The event's `type` tag as it appears in JSONL output.
    pub fn kind(&self) -> &'static str {
        match self {
            SimEvent::L2Miss { .. } => "l2_miss",
            SimEvent::L2Fill { .. } => "l2_fill",
            SimEvent::CastoutIssued { .. } => "castout_issued",
            SimEvent::CastoutAborted { .. } => "castout_aborted",
            SimEvent::CastoutSquashed { .. } => "castout_squashed",
            SimEvent::CastoutSnarfed { .. } => "castout_snarfed",
            SimEvent::CastoutAccepted { .. } => "castout_accepted",
            SimEvent::CoherenceUpdate { .. } => "coherence_update",
            SimEvent::WbhtAllocate { .. } => "wbht_allocate",
            SimEvent::WbhtPredict { .. } => "wbht_predict",
            SimEvent::WbhtMispredict { .. } => "wbht_mispredict",
            SimEvent::RetrySwitchFlip { .. } => "retry_switch_flip",
            SimEvent::SnarfArbitration { .. } => "snarf_arbitration",
            SimEvent::SnarfBufferDeclined { .. } => "snarf_buffer_declined",
            SimEvent::L3Retry { .. } => "l3_retry",
            SimEvent::Interval { .. } => "interval",
        }
    }

    /// Serializes to one JSON object (no trailing newline), `t` first.
    pub fn to_json(&self, now: Cycle) -> String {
        let mut s = format!("{{\"t\":{},\"type\":\"{}\"", now, self.kind());
        match self {
            SimEvent::L2Miss { l2, line, store } => {
                push_kv(&mut s, &[("l2", J::U(*l2 as u64)), ("line", J::U(*line))]);
                push_kv(&mut s, &[("store", J::B(*store))]);
            }
            SimEvent::L2Fill {
                l2,
                line,
                source,
                latency,
            } => {
                push_kv(
                    &mut s,
                    &[
                        ("l2", J::U(*l2 as u64)),
                        ("line", J::U(*line)),
                        ("source", J::S(source.as_str())),
                        ("latency", J::U(*latency)),
                    ],
                );
            }
            SimEvent::CastoutIssued {
                l2,
                line,
                dirty,
                snarf_eligible,
            } => {
                push_kv(
                    &mut s,
                    &[
                        ("l2", J::U(*l2 as u64)),
                        ("line", J::U(*line)),
                        ("dirty", J::B(*dirty)),
                        ("snarf_eligible", J::B(*snarf_eligible)),
                    ],
                );
            }
            SimEvent::CastoutAborted { l2, line }
            | SimEvent::CastoutAccepted { l2, line }
            | SimEvent::CoherenceUpdate { l2, line }
            | SimEvent::WbhtAllocate { l2, line }
            | SimEvent::SnarfBufferDeclined { l2, line } => {
                push_kv(&mut s, &[("l2", J::U(*l2 as u64)), ("line", J::U(*line))]);
            }
            SimEvent::CastoutSquashed { l2, line, reason } => {
                push_kv(
                    &mut s,
                    &[
                        ("l2", J::U(*l2 as u64)),
                        ("line", J::U(*line)),
                        ("reason", J::S(reason.as_str())),
                    ],
                );
            }
            SimEvent::CastoutSnarfed { l2, by, line } => {
                push_kv(
                    &mut s,
                    &[
                        ("l2", J::U(*l2 as u64)),
                        ("by", J::U(*by as u64)),
                        ("line", J::U(*line)),
                    ],
                );
            }
            SimEvent::WbhtPredict {
                l2,
                line,
                engaged,
                abort,
                correct,
            } => {
                push_kv(
                    &mut s,
                    &[
                        ("l2", J::U(*l2 as u64)),
                        ("line", J::U(*line)),
                        ("engaged", J::B(*engaged)),
                        ("abort", J::B(*abort)),
                        ("correct", J::B(*correct)),
                    ],
                );
            }
            SimEvent::WbhtMispredict { l2, line, abort } => {
                push_kv(
                    &mut s,
                    &[
                        ("l2", J::U(*l2 as u64)),
                        ("line", J::U(*line)),
                        ("abort", J::B(*abort)),
                    ],
                );
            }
            SimEvent::RetrySwitchFlip {
                engaged,
                window_retries,
                threshold,
            } => {
                push_kv(
                    &mut s,
                    &[
                        ("engaged", J::B(*engaged)),
                        ("window_retries", J::U(*window_retries)),
                        ("threshold", J::U(*threshold)),
                    ],
                );
            }
            SimEvent::SnarfArbitration { l2, line, winner } => {
                push_kv(&mut s, &[("l2", J::U(*l2 as u64)), ("line", J::U(*line))]);
                match winner {
                    Some(w) => push_kv(&mut s, &[("winner", J::U(*w as u64))]),
                    None => s.push_str(",\"winner\":null"),
                }
            }
            SimEvent::L3Retry { reason, line } => {
                push_kv(
                    &mut s,
                    &[("reason", J::S(reason.as_str())), ("line", J::U(*line))],
                );
            }
            SimEvent::Interval {
                start,
                end,
                counters,
            } => {
                push_kv(&mut s, &[("start", J::U(*start)), ("end", J::U(*end))]);
                s.push_str(",\"counters\":{");
                for (i, (k, v)) in counters.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!("\"{k}\":{v}"));
                }
                s.push('}');
            }
        }
        s.push('}');
        s
    }
}

/// Tiny JSON scalar helper for [`SimEvent::to_json`].
enum J {
    U(u64),
    B(bool),
    S(&'static str),
}

fn push_kv(s: &mut String, kvs: &[(&str, J)]) {
    for (k, v) in kvs {
        match v {
            J::U(u) => s.push_str(&format!(",\"{k}\":{u}")),
            J::B(b) => s.push_str(&format!(",\"{k}\":{b}")),
            J::S(t) => s.push_str(&format!(",\"{k}\":\"{t}\"")),
        }
    }
}

/// Consumer of simulator events.
pub trait EventSink {
    /// Receives one event stamped with the current cycle.
    fn emit(&mut self, now: Cycle, event: &SimEvent);

    /// Flushes buffered output (no-op by default).
    fn flush(&mut self) {}
}

/// A sink that discards everything (telemetry explicitly "on but off").
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&mut self, _now: Cycle, _event: &SimEvent) {}
}

/// A sink that records events in memory, for tests and tools.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    events: Vec<(Cycle, SimEvent)>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded `(cycle, event)` pairs, in emission order.
    pub fn events(&self) -> &[(Cycle, SimEvent)] {
        &self.events
    }
}

impl EventSink for VecSink {
    fn emit(&mut self, now: Cycle, event: &SimEvent) {
        self.events.push((now, event.clone()));
    }
}

/// A sink that writes one JSON object per line to any writer.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    /// Sticky first write error, surfaced on [`EventSink::flush`] via panic
    /// avoidance: we stop writing and remember the error.
    error: Option<io::Error>,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a JSONL trace file.
    ///
    /// # Errors
    ///
    /// Returns any error from [`File::create`].
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(out: W) -> Self {
        JsonlSink { out, error: None }
    }

    /// The first write error encountered, if any.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn emit(&mut self, now: Cycle, event: &SimEvent) {
        if self.error.is_some() {
            return;
        }
        let line = event.to_json(now);
        if let Err(e) = writeln!(self.out, "{line}") {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) {
        if let Err(e) = self.out.flush() {
            self.error.get_or_insert(e);
        }
    }
}

/// Cheap cloneable handle to an optional shared event sink.
///
/// Every simulator component holds one. Disabled handles are a `None`:
/// [`Telemetry::emit`] is one branch and never constructs the event.
#[derive(Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<Mutex<dyn EventSink + Send>>>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.sink.is_some())
            .finish()
    }
}

impl Telemetry {
    /// A disabled handle (the default).
    pub fn disabled() -> Self {
        Telemetry { sink: None }
    }

    /// Wraps a sink in a new shared handle.
    pub fn new<S: EventSink + Send + 'static>(sink: S) -> Self {
        Telemetry {
            sink: Some(Arc::new(Mutex::new(sink))),
        }
    }

    /// Builds a handle around an existing shared sink (lets the caller
    /// keep a typed reference, e.g. to read a [`VecSink`] back).
    pub fn from_shared<S: EventSink + Send + 'static>(sink: Arc<Mutex<S>>) -> Self {
        Telemetry { sink: Some(sink) }
    }

    /// A handle plus a typed reference to its in-memory sink.
    pub fn with_vec_sink() -> (Self, Arc<Mutex<VecSink>>) {
        let sink = Arc::new(Mutex::new(VecSink::new()));
        (Telemetry::from_shared(sink.clone()), sink)
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits the event produced by `make` — only calling `make` (and only
    /// paying any formatting cost) when a sink is attached.
    #[inline]
    pub fn emit<F: FnOnce() -> SimEvent>(&self, now: Cycle, make: F) {
        if let Some(sink) = &self.sink {
            sink.lock().expect("telemetry sink lock").emit(now, &make());
        }
    }

    /// Flushes the underlying sink.
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            sink.lock().expect("telemetry sink lock").flush();
        }
    }
}

/// How a run's telemetry should be set up (CLI-facing).
#[derive(Debug, Clone, Default)]
pub struct TelemetryConfig {
    /// JSONL event-trace output path (`--trace-events`); `None` disables
    /// event tracing.
    pub trace_path: Option<std::path::PathBuf>,
    /// Interval-sampler period in cycles (`--interval-stats`); `None`
    /// disables interval sampling. The paper's retry window (1M cycles at
    /// full scale) is the natural default period.
    pub interval: Option<Cycle>,
}

impl TelemetryConfig {
    /// Everything off.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Builds the [`Telemetry`] handle this config describes.
    ///
    /// # Errors
    ///
    /// Returns any error from creating the trace file.
    pub fn build(&self) -> io::Result<Telemetry> {
        match &self.trace_path {
            Some(path) => Ok(Telemetry::new(JsonlSink::create(path)?)),
            None => Ok(Telemetry::disabled()),
        }
    }
}

pub use crate::interval::{IntervalRecord, IntervalSampler, DEFAULT_INTERVAL};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_emit_never_runs_closure() {
        let t = Telemetry::disabled();
        t.emit(1, || panic!("must not run"));
        assert!(!t.is_enabled());
    }

    #[test]
    fn vec_sink_records_in_order() {
        let (t, sink) = Telemetry::with_vec_sink();
        assert!(t.is_enabled());
        t.emit(5, || SimEvent::L2Miss {
            l2: 1,
            line: 10,
            store: false,
        });
        t.emit(9, || SimEvent::CastoutAborted { l2: 1, line: 10 });
        let ev = sink.lock().unwrap();
        assert_eq!(ev.events().len(), 2);
        assert_eq!(ev.events()[0].0, 5);
        assert_eq!(ev.events()[1].1.kind(), "castout_aborted");
    }

    #[test]
    fn clone_shares_sink() {
        let (t, sink) = Telemetry::with_vec_sink();
        let t2 = t.clone();
        t.emit(1, || SimEvent::CastoutAccepted { l2: 0, line: 1 });
        t2.emit(2, || SimEvent::CastoutAccepted { l2: 0, line: 2 });
        assert_eq!(sink.lock().unwrap().events().len(), 2);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(
            7,
            &SimEvent::L2Fill {
                l2: 2,
                line: 99,
                source: FillSource::L3,
                latency: 120,
            },
        );
        sink.emit(
            8,
            &SimEvent::L3Retry {
                reason: L3RetryReason::ReadQueueFull,
                line: 4,
            },
        );
        sink.flush();
        let text = String::from_utf8(sink.out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"t\":7,\"type\":\"l2_fill\",\"l2\":2,\"line\":99,\"source\":\"l3\",\"latency\":120}"
        );
        assert!(lines[1].contains("\"reason\":\"read_queue_full\""));
    }

    #[test]
    fn event_json_is_balanced_for_all_variants() {
        let events = [
            SimEvent::L2Miss {
                l2: 0,
                line: 1,
                store: true,
            },
            SimEvent::L2Fill {
                l2: 0,
                line: 1,
                source: FillSource::Memory,
                latency: 5,
            },
            SimEvent::CastoutIssued {
                l2: 0,
                line: 1,
                dirty: false,
                snarf_eligible: true,
            },
            SimEvent::CastoutAborted { l2: 0, line: 1 },
            SimEvent::CastoutSquashed {
                l2: 0,
                line: 1,
                reason: SquashReason::PeerHasCopy,
            },
            SimEvent::CastoutSnarfed {
                l2: 0,
                by: 3,
                line: 1,
            },
            SimEvent::CastoutAccepted { l2: 0, line: 1 },
            SimEvent::WbhtAllocate { l2: 0, line: 1 },
            SimEvent::WbhtPredict {
                l2: 0,
                line: 1,
                engaged: true,
                abort: false,
                correct: true,
            },
            SimEvent::WbhtMispredict {
                l2: 0,
                line: 1,
                abort: true,
            },
            SimEvent::RetrySwitchFlip {
                engaged: false,
                window_retries: 3,
                threshold: 9,
            },
            SimEvent::SnarfArbitration {
                l2: 0,
                line: 1,
                winner: None,
            },
            SimEvent::SnarfBufferDeclined { l2: 0, line: 1 },
            SimEvent::L3Retry {
                reason: L3RetryReason::CastoutBufferFull,
                line: 1,
            },
            SimEvent::Interval {
                start: 0,
                end: 100,
                counters: vec![("a", 1), ("b", 2)],
            },
        ];
        for ev in &events {
            let j = ev.to_json(42);
            assert!(j.starts_with("{\"t\":42,\"type\":\""), "{j}");
            assert_eq!(j.matches('{').count(), j.matches('}').count(), "{j}");
            assert_eq!(j.matches('"').count() % 2, 0, "{j}");
            assert!(j.contains(&format!("\"type\":\"{}\"", ev.kind())));
        }
    }
}
