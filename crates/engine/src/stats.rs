//! Online statistics helpers used throughout the simulator.

/// Running mean / variance accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use cmpsim_engine::stats::OnlineMean;
///
/// let mut m = OnlineMean::new();
/// for x in [2.0, 4.0, 6.0] { m.add(x); }
/// assert_eq!(m.mean(), 4.0);
/// assert_eq!(m.count(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineMean {
    count: u64,
    mean: f64,
    m2: f64,
}

impl OnlineMean {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of samples so far (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineMean) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.count += other.count;
    }
}

/// A hit/miss style ratio counter.
///
/// # Example
///
/// ```
/// use cmpsim_engine::stats::Ratio;
///
/// let mut hit_rate = Ratio::new();
/// hit_rate.hit();
/// hit_rate.hit();
/// hit_rate.miss();
/// assert!((hit_rate.ratio() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ratio {
    hits: u64,
    misses: u64,
}

impl Ratio {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a hit (numerator and denominator).
    pub fn hit(&mut self) {
        self.hits += 1;
    }

    /// Records a miss (denominator only).
    pub fn miss(&mut self) {
        self.misses += 1;
    }

    /// Records `hit` as a boolean outcome.
    pub fn record(&mut self, hit: bool) {
        if hit {
            self.hit()
        } else {
            self.miss()
        }
    }

    /// Numerator.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Denominator minus numerator.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total events.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hits over total; 0 when no events were recorded.
    pub fn ratio(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }

    /// Ratio as a percentage.
    pub fn percent(&self) -> f64 {
        self.ratio() * 100.0
    }

    /// Merges another ratio counter into this one.
    pub fn merge(&mut self, other: &Ratio) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// Power-of-two bucketed histogram for latency-like values.
///
/// Bucket `i` counts values in `[2^i, 2^(i+1))`; bucket 0 also counts 0.
///
/// # Example
///
/// ```
/// use cmpsim_engine::stats::Log2Histogram;
///
/// let mut h = Log2Histogram::new();
/// h.add(100);
/// h.add(431);
/// assert_eq!(h.count(), 2);
/// assert!(h.mean() > 200.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Log2Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one value.
    pub fn add(&mut self, v: u64) {
        let idx = if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest observed value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Count in bucket `i` (values in `[2^i, 2^(i+1))`).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Approximate p-th percentile (`p` in `[0,1]`) from bucket midpoints,
    /// clamped so it never exceeds [`Log2Histogram::max`] (the top
    /// bucket's midpoint can otherwise overshoot the largest observation).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                // midpoint of [2^i, 2^(i+1))
                let mid = (1u64 << i) + ((1u64 << i) >> 1);
                return mid.min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_mean_basic() {
        let mut m = OnlineMean::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            m.add(x);
        }
        assert_eq!(m.count(), 4);
        assert!((m.mean() - 2.5).abs() < 1e-12);
        assert!((m.variance() - 1.25).abs() < 1e-12);
        assert!((m.std_dev() - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn online_mean_empty() {
        let m = OnlineMean::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
    }

    #[test]
    fn online_mean_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineMean::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = OnlineMean::new();
        let mut b = OnlineMean::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn ratio_counts() {
        let mut r = Ratio::new();
        r.record(true);
        r.record(false);
        r.record(true);
        r.record(true);
        assert_eq!(r.hits(), 3);
        assert_eq!(r.misses(), 1);
        assert_eq!(r.total(), 4);
        assert!((r.percent() - 75.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_empty_is_zero() {
        assert_eq!(Ratio::new().ratio(), 0.0);
    }

    #[test]
    fn ratio_merge() {
        let mut a = Ratio::new();
        a.hit();
        let mut b = Ratio::new();
        b.miss();
        b.hit();
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.hits(), 2);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Log2Histogram::new();
        h.add(0);
        h.add(1);
        h.add(2);
        h.add(3);
        h.add(1024);
        assert_eq!(h.bucket(0), 2); // 0 and 1
        assert_eq!(h.bucket(1), 2); // 2 and 3
        assert_eq!(h.bucket(10), 1); // 1024
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 1024);
    }

    #[test]
    fn histogram_percentile_never_exceeds_max() {
        // Regression: the top bucket's midpoint used to overshoot max().
        // 1000 lands in bucket 9 ([512, 1024)) whose midpoint is 768 — fine
        // — but 600 lands in the same bucket and 768 > 600.
        let mut h = Log2Histogram::new();
        h.add(600);
        assert_eq!(h.percentile(1.0), 600);
        assert!(h.percentile(0.5) <= h.max());

        let mut h2 = Log2Histogram::new();
        h2.add(5);
        h2.add(1025);
        assert!(h2.percentile(0.99) <= h2.max());
        assert_eq!(Log2Histogram::new().percentile(0.5), 0);
    }

    #[test]
    fn histogram_merge_matches_sequential() {
        let mut whole = Log2Histogram::new();
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        for v in [0u64, 1, 7, 100, 431, 9000] {
            whole.add(v);
            if v < 100 {
                a.add(v);
            } else {
                b.add(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn histogram_percentile_monotone() {
        let mut h = Log2Histogram::new();
        for v in [10u64, 20, 40, 80, 160, 320, 640] {
            h.add(v);
        }
        assert!(h.percentile(0.1) <= h.percentile(0.5));
        assert!(h.percentile(0.5) <= h.percentile(0.99));
    }
}
