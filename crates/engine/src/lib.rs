//! Discrete-event simulation engine for the CMP cache-hierarchy simulator.
//!
//! This crate provides the domain-agnostic substrate on which the rest of
//! the simulator is built:
//!
//! * a virtual clock measured in [`Cycle`]s,
//! * a deterministic, stable [`EventQueue`] (same-time events pop in push
//!   order),
//! * contention-modelling resources ([`FifoServer`], [`Channel`],
//!   [`SlotPool`]) that turn "this unit is busy" into queueing delay,
//! * sharded-execution primitives: lock-free SPSC handoff rings
//!   ([`spsc`]) and conservative-lookahead window math ([`shard`]),
//! * a small, fast, deterministic RNG ([`SplitMix64`]),
//! * online statistics helpers ([`stats`]), and
//! * fast deterministic hashing for internal maps ([`hash`]).
//!
//! # Design
//!
//! The simulator is *event-driven*, not cycle-stepped: components reserve
//! resources with busy-until semantics, so the latency of an operation is
//! its contention-free latency plus whatever queueing the resources
//! impose. Events must be processed in non-decreasing time order for the
//! resource models to be meaningful; [`EventQueue`] guarantees that order.
//!
//! # Example
//!
//! ```
//! use cmpsim_engine::{EventQueue, FifoServer};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping(u32) }
//!
//! let mut q = EventQueue::new();
//! let mut port = FifoServer::new(4); // 4-cycle service time
//! q.push(10, Ev::Ping(0));
//! q.push(10, Ev::Ping(1));
//! while let Some((now, Ev::Ping(id))) = q.pop() {
//!     let done = port.reserve(now); // second ping queues behind the first
//!     println!("ping {id} completes at {done}");
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod hash;
mod interval;
pub mod metrics;
pub mod profiler;
pub mod progress;
pub mod queue;
mod resource;
mod rng;
pub mod shard;
pub mod spans;
pub mod spsc;
pub mod stats;
pub mod stream;
pub mod telemetry;

pub use queue::EventQueue;
pub use resource::{Channel, FifoServer, SlotPool};
pub use rng::SplitMix64;

/// Virtual time, in processor core cycles.
///
/// All latencies in the simulator are expressed in core cycles; units that
/// run slower than the core (the intrachip ring and the memory controller
/// run at 1:2 core speed in the modelled system) simply use larger cycle
/// counts.
pub type Cycle = u64;
