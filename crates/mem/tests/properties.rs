//! Property-based tests for the L3 victim cache and memory controller.

use cmpsim_cache::LineAddr;
use cmpsim_coherence::SnoopResponse;
use cmpsim_mem::{L3Cache, L3Config, MemoryConfig, MemoryController};
use proptest::prelude::*;

proptest! {
    /// The L3 never holds more lines than its capacity, and every line
    /// reported accepted is findable until evicted.
    #[test]
    fn l3_capacity_respected(ops in proptest::collection::vec((0u64..4096, any::<bool>()), 1..300)) {
        let mut l3 = L3Cache::new(L3Config::scaled(256)); // tiny: 16KB slices
        let cap = l3.config().geometry.total_bytes() / 128;
        let mut now = 0;
        for &(line, dirty) in &ops {
            now += 5;
            let _ = l3.accept_castout(now, LineAddr::new(line), dirty);
            prop_assert!(l3.valid_lines() <= cap);
        }
    }

    /// Snooping a castout never reports both squash and accept; retries
    /// happen only under queue pressure.
    #[test]
    fn l3_snoop_castout_classification(lines in proptest::collection::vec(0u64..256, 1..200)) {
        let mut l3 = L3Cache::new(L3Config::scaled(256));
        let mut now = 0;
        for &l in &lines {
            now += 7;
            let line = LineAddr::new(l);
            match l3.snoop_castout(now, line, false) {
                SnoopResponse::L3Hit(_) => {
                    prop_assert!(l3.peek(line), "hit response for absent line");
                }
                SnoopResponse::L3Accept => {
                    let _ = l3.accept_castout(now, line, false);
                }
                SnoopResponse::L3Retry => {}
                other => prop_assert!(false, "unexpected {other:?}"),
            }
        }
    }

    /// Read snoops never mutate contents: peek agrees before and after.
    #[test]
    fn l3_read_snoop_pure(lines in proptest::collection::vec(0u64..128, 1..100)) {
        let mut l3 = L3Cache::new(L3Config::scaled(256));
        let mut now = 0;
        for &l in &lines {
            now += 3;
            let _ = l3.accept_castout(now, LineAddr::new(l % 32), false);
            let probe = LineAddr::new(l);
            let before = l3.peek(probe);
            let _ = l3.snoop_read(now, probe);
            prop_assert_eq!(before, l3.peek(probe));
        }
    }

    /// Memory reads complete no earlier than the access latency and
    /// bank contention only ever delays.
    #[test]
    fn memory_latency_floor(times in proptest::collection::vec(0u64..2_000, 1..60)) {
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let cfg = MemoryConfig::default();
        let mut mem = MemoryController::new(cfg);
        for &t in &sorted {
            let done = mem.read(t, LineAddr::new(t));
            prop_assert!(done >= t + cfg.access_cycles);
        }
        prop_assert_eq!(mem.stats().reads, sorted.len() as u64);
    }
}
