//! The memory controller on its dedicated pathway.

use cmpsim_cache::LineAddr;
use cmpsim_engine::{Channel, Cycle};

/// Memory controller configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryConfig {
    /// DRAM access component of the 431-cycle contention-free memory
    /// latency (the rest is ring propagation, snoop/combining, and
    /// controller queueing).
    pub access_cycles: Cycle,
    /// Independent banks (concurrent accesses).
    pub banks: usize,
    /// Bank busy time per access.
    pub bank_occupancy: Cycle,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            access_cycles: 320,
            banks: 16,
            bank_occupancy: 64,
        }
    }
}

/// Memory statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Demand line reads served (off-chip accesses).
    pub reads: u64,
    /// Line writes absorbed (dirty L3 victims).
    pub writes: u64,
}

/// The memory controller: banked DRAM behind the dedicated memory path.
///
/// Memory is the backstop of the hierarchy — it can always source a line
/// (any address is valid) and always sinks dirty L3 victims.
///
/// # Example
///
/// ```
/// use cmpsim_mem::{MemoryController, MemoryConfig};
/// use cmpsim_cache::LineAddr;
///
/// let mut mem = MemoryController::new(MemoryConfig::default());
/// let ready = mem.read(100, LineAddr::new(1));
/// assert!(ready >= 100 + MemoryConfig::default().access_cycles);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryController {
    cfg: MemoryConfig,
    banks: Channel,
    stats: MemoryStats,
}

impl MemoryController {
    /// Creates a memory controller.
    pub fn new(cfg: MemoryConfig) -> Self {
        MemoryController {
            banks: Channel::new(cfg.banks, cfg.bank_occupancy),
            cfg,
            stats: MemoryStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> MemoryConfig {
        self.cfg
    }

    /// Reads a line; returns when the data leaves the controller.
    pub fn read(&mut self, now: Cycle, line: LineAddr) -> Cycle {
        self.read_timed(now, line).1
    }

    /// Like [`MemoryController::read`], but also returns the bank
    /// queueing delay: `(bank_wait, completion)`, where the access itself
    /// started at `now + bank_wait`.
    pub fn read_timed(&mut self, now: Cycle, _line: LineAddr) -> (Cycle, Cycle) {
        self.stats.reads += 1;
        let (wait, bank_done) = self.banks.reserve_timed(now);
        let start = bank_done - self.cfg.bank_occupancy;
        (wait, start + self.cfg.access_cycles)
    }

    /// Absorbs a dirty line write (posted; returns drain completion).
    pub fn write(&mut self, now: Cycle, _line: LineAddr) -> Cycle {
        self.stats.writes += 1;
        self.banks.reserve(now)
    }

    /// Statistics.
    pub fn stats(&self) -> MemoryStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_latency_floor() {
        let cfg = MemoryConfig::default();
        let mut m = MemoryController::new(cfg);
        let t = m.read(0, LineAddr::new(9));
        assert_eq!(t, cfg.access_cycles);
    }

    #[test]
    fn banks_provide_parallelism() {
        let cfg = MemoryConfig {
            access_cycles: 100,
            banks: 2,
            bank_occupancy: 50,
        };
        let mut m = MemoryController::new(cfg);
        let a = m.read(0, LineAddr::new(0));
        let b = m.read(0, LineAddr::new(1));
        let c = m.read(0, LineAddr::new(2)); // queues behind a bank
        assert_eq!(a, 100);
        assert_eq!(b, 100);
        assert_eq!(c, 150);
    }

    #[test]
    fn writes_counted() {
        let mut m = MemoryController::new(MemoryConfig::default());
        m.write(0, LineAddr::new(4));
        m.read(0, LineAddr::new(5));
        assert_eq!(m.stats().writes, 1);
        assert_eq!(m.stats().reads, 1);
    }
}
