//! The L3 victim cache and the memory controller.
//!
//! In the modelled CMP the L3 "may be used as a victim cache for both
//! modified and clean lines evicted from on-chip level 2 caches" and
//! "resides on its own dedicated off-chip pathway that is distinct from
//! the pathway to and from memory" (paper §1). Inclusion is *not*
//! maintained; on a read hit the L3 keeps its copy (which is exactly why
//! so many clean write-backs are redundant — Table 1).
//!
//! Finite incoming queues make the L3 reject transactions with *Retry*
//! responses under pressure ("lines may be rejected by the L3 if there
//! are not enough hardware resources to take the line immediately", §2);
//! those retries are the signal the paper's adaptive WBHT switch keys on.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod l3;
mod memory;

pub use l3::{L3Cache, L3Config, L3Stats};
pub use memory::{MemoryConfig, MemoryController, MemoryStats};
