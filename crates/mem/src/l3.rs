//! The sliced off-chip L3 victim cache controller.

use cmpsim_cache::{InsertPosition, LineAddr, ReplacementPolicy, SlicedGeometry, TagArray};
use cmpsim_coherence::{L3State, SnoopResponse};
use cmpsim_engine::telemetry::{L3RetryReason, SimEvent, Telemetry};
use cmpsim_engine::{Channel, Cycle, SlotPool};

/// L3 configuration.
#[derive(Debug, Clone, Copy)]
pub struct L3Config {
    /// Slicing and per-slice geometry (paper: 4 slices × 4 MB, 16-way).
    pub geometry: SlicedGeometry,
    /// Data-array access *latency* per slice, in core cycles. This is
    /// the array component; ring propagation and queueing add the rest
    /// of the 167-cycle contention-free L3 latency.
    pub array_cycles: Cycle,
    /// Banks per slice (concurrent array accesses).
    pub array_banks: usize,
    /// Bank busy time per access (throughput; `array_cycles` is the
    /// latency, which may exceed the initiation interval in a pipelined
    /// array).
    pub array_occupancy: Cycle,
    /// Outstanding read capacity per slice (read queue entries).
    pub read_queue: usize,
    /// Incoming castout-data queue entries per slice — the resource whose
    /// exhaustion produces L3-issued retries.
    pub data_queue: usize,
    /// How long a castout occupies a data-queue slot (drain time).
    pub castout_drain: Cycle,
    /// Strictly exclusive victim-cache behaviour: invalidate the L3 copy
    /// when a read hit returns the line to an L2. The modelled system
    /// (and the paper's Table 1) requires `false` — the L3 *keeps* its
    /// copy, which is exactly why so many clean write-backs are
    /// redundant. `true` is provided as an ablation of that design
    /// decision.
    pub exclusive_on_read_hit: bool,
}

impl L3Config {
    /// The paper's Table 3 configuration.
    pub fn paper() -> Self {
        L3Config {
            geometry: SlicedGeometry::new(4, 4 * 1024 * 1024, 16, 128)
                .expect("paper L3 geometry is valid"),
            array_cycles: 60,
            array_banks: 4,
            array_occupancy: 16,
            read_queue: 16,
            data_queue: 8,
            castout_drain: 220,
            exclusive_on_read_hit: false,
        }
    }

    /// A capacity-scaled configuration (same latencies/associativity,
    /// 1/`factor` the capacity) for fast tests and experiments.
    ///
    /// # Panics
    ///
    /// Panics if the scaled geometry is invalid (e.g. `factor` not a
    /// power of two).
    pub fn scaled(factor: u64) -> Self {
        let mut c = Self::paper();
        c.geometry = SlicedGeometry::new(4, 4 * 1024 * 1024 / factor, 16, 128)
            .expect("scaled L3 geometry must be valid");
        c
    }
}

/// L3 statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L3Stats {
    /// Read snoops that hit.
    pub read_hits: u64,
    /// Read snoops that missed.
    pub read_misses: u64,
    /// Reads actually served (chosen as data source).
    pub reads_served: u64,
    /// Castouts accepted into the array.
    pub castouts_accepted: u64,
    /// Clean castouts squashed because the line was already valid.
    pub castouts_squashed: u64,
    /// Retry responses issued (queue full).
    pub retries_issued: u64,
    /// Lines invalidated by RFO/upgrade snoops.
    pub invalidations: u64,
    /// Dirty victims written back to memory on L3 eviction.
    pub dirty_victims_to_memory: u64,
    /// Peak read-queue occupancy across slices (gauge).
    pub read_queue_high_water: u64,
    /// Peak incoming-data-queue occupancy across slices (gauge).
    pub data_queue_high_water: u64,
}

/// The L3 victim cache: sliced tag+data arrays behind finite queues.
///
/// The L3 participates in the snoop protocol via [`snoop_read`] /
/// [`snoop_castout`], and moves data via [`provide_read`] /
/// [`accept_castout`] once the combined response selects it.
///
/// [`snoop_read`]: L3Cache::snoop_read
/// [`snoop_castout`]: L3Cache::snoop_castout
/// [`provide_read`]: L3Cache::provide_read
/// [`accept_castout`]: L3Cache::accept_castout
///
/// # Example
///
/// ```
/// use cmpsim_mem::{L3Cache, L3Config};
/// use cmpsim_cache::LineAddr;
/// use cmpsim_coherence::SnoopResponse;
///
/// let mut l3 = L3Cache::new(L3Config::scaled(64));
/// let line = LineAddr::new(42);
/// assert_eq!(l3.snoop_read(0, line), SnoopResponse::L3Miss);
/// l3.accept_castout(0, line, false);
/// assert!(matches!(l3.snoop_read(10, line), SnoopResponse::L3Hit(_)));
/// ```
#[derive(Debug, Clone)]
pub struct L3Cache {
    cfg: L3Config,
    slices: Vec<Slice>,
    stats: L3Stats,
    telemetry: Telemetry,
}

#[derive(Debug, Clone)]
struct Slice {
    tags: TagArray<L3State>,
    array: Channel,
    reads: SlotPool,
    data_in: SlotPool,
}

impl Slice {
    /// Reserves an array bank; returns `(bank_wait, completion)` (bank
    /// occupancy governs throughput, `latency_tail` the rest of the
    /// access latency; the wait component feeds latency attribution).
    fn array_access_timed(&mut self, now: Cycle, latency_tail: Cycle) -> (Cycle, Cycle) {
        let (wait, done) = self.array.reserve_timed(now);
        (wait, done + latency_tail)
    }
}

impl L3Cache {
    /// Creates an L3 from a configuration.
    pub fn new(cfg: L3Config) -> Self {
        let slices = (0..cfg.geometry.slices())
            .map(|_| Slice {
                tags: TagArray::new(cfg.geometry.per_slice(), ReplacementPolicy::Lru),
                array: Channel::new(cfg.array_banks, cfg.array_occupancy),
                reads: SlotPool::new(cfg.read_queue),
                data_in: SlotPool::new(cfg.data_queue),
            })
            .collect();
        L3Cache {
            cfg,
            slices,
            stats: L3Stats::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches an event-trace handle; each retry the controller issues
    /// is emitted as a [`SimEvent::L3Retry`] naming the full resource.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    fn trace_retry(&self, now: Cycle, reason: L3RetryReason, line: LineAddr) {
        self.telemetry.emit(now, || SimEvent::L3Retry {
            reason,
            line: line.raw(),
        });
    }

    /// The configuration.
    pub fn config(&self) -> &L3Config {
        &self.cfg
    }

    fn slice_mut(&mut self, line: LineAddr) -> &mut Slice {
        let s = self.cfg.geometry.slice_of(line) as usize;
        &mut self.slices[s]
    }

    fn slice(&self, line: LineAddr) -> &Slice {
        let s = self.cfg.geometry.slice_of(line) as usize;
        &self.slices[s]
    }

    /// Snoops a read-class transaction (`ReadShared`/`ReadExclusive`).
    ///
    /// Hits answer [`SnoopResponse::L3Hit`]; a hit that cannot be
    /// serviced because the slice's read queue is full answers
    /// [`SnoopResponse::L3Retry`].
    pub fn snoop_read(&mut self, now: Cycle, line: LineAddr) -> SnoopResponse {
        let local = self.cfg.geometry.slice_local(line);
        let slice = self.slice_mut(line);
        match slice.tags.probe(local) {
            Some((_, st)) => {
                if slice.reads.in_use(now) >= slice.reads.capacity() {
                    self.stats.retries_issued += 1;
                    self.trace_retry(now, L3RetryReason::ReadQueueFull, line);
                    SnoopResponse::L3Retry
                } else {
                    self.stats.read_hits += 1;
                    SnoopResponse::L3Hit(st)
                }
            }
            None => {
                self.stats.read_misses += 1;
                SnoopResponse::L3Miss
            }
        }
    }

    /// Snoops a castout. Clean castouts whose line is already valid hit
    /// ([`SnoopResponse::L3Hit`] → the collector squashes the data
    /// transfer); otherwise the L3 accepts when its incoming data queue
    /// has room and retries when it does not.
    pub fn snoop_castout(&mut self, now: Cycle, line: LineAddr, dirty: bool) -> SnoopResponse {
        let local = self.cfg.geometry.slice_local(line);
        let squash_hold = self.cfg.array_occupancy;
        let slice = self.slice_mut(line);
        // Every castout claims an incoming-queue slot before the tag
        // check — the controller cannot know a write-back is redundant
        // until it has processed it, so a full queue retries redundant
        // and useful castouts alike ("lines may be rejected by the L3 if
        // there are not enough hardware resources to take the line
        // immediately", §2). This is exactly the pressure the WBHT
        // relieves by never issuing the transaction at all.
        if slice.data_in.in_use(now) >= slice.data_in.capacity() {
            self.stats.retries_issued += 1;
            self.trace_retry(now, L3RetryReason::DataInFull, line);
            return SnoopResponse::L3Retry;
        }
        let present = slice.tags.probe(local).map(|(_, s)| s);
        match (present, dirty) {
            (Some(st), false) => {
                // Clean castout, line already here: squash. The slot is
                // held only for the tag check.
                slice.data_in.try_acquire(now, now + squash_hold);
                self.stats.castouts_squashed += 1;
                SnoopResponse::L3Hit(st)
            }
            (Some(st), true) => SnoopResponse::L3Hit(st),
            (None, _) => SnoopResponse::L3Accept,
        }
    }

    /// Pure peek used by the WBHT-correctness oracle (Table 4's "WBHT
    /// Correct" column is measured "by peeking into the L3 cache in the
    /// simulator"). No stats or LRU side effects.
    pub fn peek(&self, line: LineAddr) -> bool {
        let local = self.cfg.geometry.slice_local(line);
        self.slice(line).tags.probe(local).is_some()
    }

    /// Serves a read the combined response routed to the L3. Returns the
    /// time the data leaves the L3 array and the line's state.
    ///
    /// When `invalidate` is set (RFO/upgrade semantics) the copy is
    /// removed — the requester will hold the only up-to-date copy.
    ///
    /// # Panics
    ///
    /// Panics if the line is not present (the snoop said it was).
    pub fn provide_read(
        &mut self,
        now: Cycle,
        line: LineAddr,
        invalidate: bool,
    ) -> (Cycle, L3State) {
        let (ready, st, _wait) = self.provide_read_timed(now, line, invalidate);
        (ready, st)
    }

    /// Like [`L3Cache::provide_read`], but additionally returns the
    /// array-bank queueing delay: `(ready, state, bank_wait)`, where the
    /// array access itself started at `now + bank_wait`. The span tracer
    /// uses the split to attribute L3-queue-wait vs. L3-service.
    ///
    /// # Panics
    ///
    /// Panics if the line is not present (the snoop said it was).
    pub fn provide_read_timed(
        &mut self,
        now: Cycle,
        line: LineAddr,
        invalidate: bool,
    ) -> (Cycle, L3State, Cycle) {
        let local = self.cfg.geometry.slice_local(line);
        let tail = self
            .cfg
            .array_cycles
            .saturating_sub(self.cfg.array_occupancy);
        let exclusive = self.cfg.exclusive_on_read_hit;
        let slice = self.slice_mut(line);
        let st = slice
            .tags
            .probe(local)
            .unwrap_or_else(|| panic!("provide_read of absent line {line}"))
            .1;
        let (wait, ready) = slice.array_access_timed(now, tail);
        slice.reads.try_acquire(now, ready);
        if invalidate || exclusive {
            slice.tags.invalidate(local);
            self.stats.invalidations += 1;
        } else {
            slice.tags.touch(local);
        }
        self.stats.reads_served += 1;
        (ready, st, wait)
    }

    /// Invalidates a line (RFO/upgrade by an L2 when the L3 is not the
    /// data source, so its copy would go stale). No-op when absent.
    pub fn invalidate(&mut self, line: LineAddr) {
        let local = self.cfg.geometry.slice_local(line);
        if self.slice_mut(line).tags.invalidate(local).is_some() {
            self.stats.invalidations += 1;
        }
    }

    /// Accepts a castout whose combined response selected the L3.
    ///
    /// Returns the completion time, and the dirty victim the L3 itself
    /// evicted (which must be written to memory), if any. Returns
    /// `None` when the data queue filled between snoop and accept — the
    /// caller converts that into a retry.
    pub fn accept_castout(
        &mut self,
        now: Cycle,
        line: LineAddr,
        dirty: bool,
    ) -> Option<(Cycle, Option<LineAddr>)> {
        self.accept_castout_timed(now, line, dirty)
            .map(|(done, victim, _wait)| (done, victim))
    }

    /// Like [`L3Cache::accept_castout`], but additionally returns the
    /// array-bank queueing delay: `(done, victim, bank_wait)`.
    pub fn accept_castout_timed(
        &mut self,
        now: Cycle,
        line: LineAddr,
        dirty: bool,
    ) -> Option<(Cycle, Option<LineAddr>, Cycle)> {
        let slices_bits = self.cfg.geometry.slices().trailing_zeros();
        let slice_idx = self.cfg.geometry.slice_of(line);
        let local = self.cfg.geometry.slice_local(line);
        let drain = self.cfg.castout_drain;
        let slice = &mut self.slices[slice_idx as usize];
        if !slice.data_in.try_acquire(now, now + drain) {
            self.stats.retries_issued += 1;
            self.trace_retry(now, L3RetryReason::CastoutBufferFull, line);
            return None;
        }
        let tail = self
            .cfg
            .array_cycles
            .saturating_sub(self.cfg.array_occupancy);
        let (wait, done) = slice.array_access_timed(now, tail);
        let new_state = if dirty {
            L3State::Dirty
        } else {
            L3State::Clean
        };
        let victim = if slice.tags.set_state(local, new_state) {
            // Dirty overwrite of an existing copy.
            slice.tags.touch(local);
            None
        } else {
            slice
                .tags
                .insert(local, new_state, InsertPosition::Mru)
                .filter(|ev| ev.state.is_dirty())
                .map(|ev| {
                    // Reconstruct the victim's global line address from
                    // its slice-local address.
                    LineAddr::new((ev.line.raw() << slices_bits) | slice_idx)
                })
        };
        if victim.is_some() {
            self.stats.dirty_victims_to_memory += 1;
        }
        self.stats.castouts_accepted += 1;
        Some((done, victim, wait))
    }

    /// Number of valid lines across all slices.
    pub fn valid_lines(&self) -> u64 {
        self.slices.iter().map(|s| s.tags.valid_lines()).sum()
    }

    /// Statistics. Queue high-water gauges are read live from the
    /// slices' slot pools at call time.
    pub fn stats(&self) -> L3Stats {
        let mut s = self.stats;
        for slice in &self.slices {
            s.read_queue_high_water = s.read_queue_high_water.max(slice.reads.high_water() as u64);
            s.data_queue_high_water = s
                .data_queue_high_water
                .max(slice.data_in.high_water() as u64);
        }
        s
    }

    /// Load hit rate among read snoops.
    pub fn load_hit_rate(&self) -> f64 {
        let total = self.stats.read_hits + self.stats.read_misses;
        if total == 0 {
            0.0
        } else {
            self.stats.read_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_l3() -> L3Cache {
        // 4 slices x 64 KB, 16-way.
        L3Cache::new(L3Config::scaled(64))
    }

    #[test]
    fn read_miss_then_castout_then_hit() {
        let mut l3 = small_l3();
        let line = LineAddr::new(1000);
        assert_eq!(l3.snoop_read(0, line), SnoopResponse::L3Miss);
        assert!(l3.accept_castout(0, line, false).is_some());
        assert_eq!(
            l3.snoop_read(100, line),
            SnoopResponse::L3Hit(L3State::Clean)
        );
        assert_eq!(l3.stats().read_hits, 1);
        assert_eq!(l3.stats().read_misses, 1);
    }

    #[test]
    fn clean_castout_squashed_when_present() {
        let mut l3 = small_l3();
        let line = LineAddr::new(5);
        l3.accept_castout(0, line, false);
        let r = l3.snoop_castout(10, line, false);
        assert_eq!(r, SnoopResponse::L3Hit(L3State::Clean));
        assert_eq!(l3.stats().castouts_squashed, 1);
    }

    #[test]
    fn dirty_castout_overwrites() {
        let mut l3 = small_l3();
        let line = LineAddr::new(5);
        l3.accept_castout(0, line, false);
        assert_eq!(
            l3.snoop_castout(10, line, true),
            SnoopResponse::L3Hit(L3State::Clean)
        );
        l3.accept_castout(10, line, true);
        assert_eq!(
            l3.snoop_read(200, line),
            SnoopResponse::L3Hit(L3State::Dirty)
        );
    }

    #[test]
    fn data_queue_exhaustion_retries() {
        let mut l3 = small_l3();
        let q = l3.config().data_queue;
        // Fill slice 0's data queue with castouts at t=0 (drain 60).
        for i in 0..q as u64 {
            let line = LineAddr::new(i * 4); // all slice 0
            assert!(l3.accept_castout(0, line, false).is_some());
        }
        let r = l3.snoop_castout(1, LineAddr::new(400), false);
        assert_eq!(r, SnoopResponse::L3Retry);
        assert!(l3.stats().retries_issued >= 1);
        // After the drain interval the queue has room again.
        let drain = l3.config().castout_drain;
        let r = l3.snoop_castout(drain + 1, LineAddr::new(400), false);
        assert_eq!(r, SnoopResponse::L3Accept);
    }

    #[test]
    fn provide_read_touches_or_invalidates() {
        let mut l3 = small_l3();
        let line = LineAddr::new(8);
        l3.accept_castout(0, line, false);
        let (ready, st) = l3.provide_read(10, line, false);
        assert!(ready >= 10 + l3.config().array_cycles);
        assert_eq!(st, L3State::Clean);
        assert!(l3.peek(line));
        // RFO-style provide removes the copy.
        let (_, _) = l3.provide_read(20, line, true);
        assert!(!l3.peek(line));
        assert_eq!(l3.stats().reads_served, 2);
    }

    #[test]
    fn invalidate_on_upgrade() {
        let mut l3 = small_l3();
        let line = LineAddr::new(12);
        l3.accept_castout(0, line, false);
        l3.invalidate(line);
        assert!(!l3.peek(line));
        assert_eq!(l3.stats().invalidations, 1);
        // Invalidating again is a no-op.
        l3.invalidate(line);
        assert_eq!(l3.stats().invalidations, 1);
    }

    #[test]
    fn dirty_victim_reported_for_memory() {
        // 4 slices x 4KB, 16-way, 128B lines -> 32 lines/slice, 2 sets.
        let cfg = L3Config {
            geometry: SlicedGeometry::new(4, 4096, 16, 128).unwrap(),
            array_cycles: 10,
            array_banks: 2,
            array_occupancy: 5,
            read_queue: 64,
            data_queue: 64,
            castout_drain: 1,
            exclusive_on_read_hit: false,
        };
        let mut l3 = L3Cache::new(cfg);
        // Fill one set of slice 0 with dirty lines: slice 0 lines are
        // multiples of 4; set = local & 1, so use even locals (line % 8 == 0).
        let mut t = 0;
        for i in 0..16u64 {
            l3.accept_castout(t, LineAddr::new(i * 8), true);
            t += 2;
        }
        // 17th dirty castout to the same set evicts a dirty victim.
        let r = l3.accept_castout(t, LineAddr::new(16 * 8), true).unwrap();
        assert!(r.1.is_some(), "expected a dirty victim");
        let victim = r.1.unwrap();
        // The reconstructed victim must be one of the inserted lines.
        assert_eq!(victim.raw() % 8, 0);
        assert!(victim.raw() < 16 * 8);
        assert_eq!(l3.stats().dirty_victims_to_memory, 1);
    }

    #[test]
    fn accept_fails_when_queue_filled_between_snoop_and_accept() {
        let mut l3 = small_l3();
        let q = l3.config().data_queue;
        for i in 0..q as u64 {
            assert!(l3.accept_castout(0, LineAddr::new(i * 4), false).is_some());
        }
        assert!(l3.accept_castout(1, LineAddr::new(400), false).is_none());
    }

    #[test]
    fn exclusive_mode_invalidates_on_read_hit() {
        let mut cfg = L3Config::scaled(64);
        cfg.exclusive_on_read_hit = true;
        let mut l3 = L3Cache::new(cfg);
        let line = LineAddr::new(20);
        l3.accept_castout(0, line, false);
        let (_, _) = l3.provide_read(10, line, false);
        assert!(!l3.peek(line), "exclusive victim cache must drop on hit");
    }

    #[test]
    fn hit_rate_computation() {
        let mut l3 = small_l3();
        let line = LineAddr::new(3);
        l3.accept_castout(0, line, false);
        l3.snoop_read(1, line);
        l3.snoop_read(2, LineAddr::new(7));
        assert!((l3.load_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn telemetry_traces_each_retry_reason() {
        use cmpsim_engine::telemetry::{L3RetryReason, SimEvent, Telemetry};

        let (t, sink) = Telemetry::with_vec_sink();
        let mut l3 = small_l3();
        l3.attach_telemetry(t);
        let q = l3.config().data_queue;
        for i in 0..q as u64 {
            assert!(l3.accept_castout(0, LineAddr::new(i * 4), false).is_some());
        }
        // Slice 0's data queue is now full: snoop bounces...
        assert_eq!(
            l3.snoop_castout(1, LineAddr::new(400), false),
            SnoopResponse::L3Retry
        );
        // ...and so does a direct accept.
        assert!(l3.accept_castout(1, LineAddr::new(404), false).is_none());
        let reasons: Vec<L3RetryReason> = sink
            .lock()
            .unwrap()
            .events()
            .iter()
            .map(|(_, e)| match e {
                SimEvent::L3Retry { reason, .. } => *reason,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(
            reasons,
            [L3RetryReason::DataInFull, L3RetryReason::CastoutBufferFull]
        );
    }

    #[test]
    fn valid_lines_counts_all_slices() {
        let mut l3 = small_l3();
        for i in 0..8 {
            l3.accept_castout(0, LineAddr::new(i), false);
        }
        assert_eq!(l3.valid_lines(), 8);
    }
}
