//! Offline drop-in subset of the [criterion](https://crates.io/crates/criterion)
//! benchmarking API.
//!
//! The container this repository grows in has no network access, so the real
//! criterion crate cannot be fetched. This shim implements the subset the
//! workspace's benches use — `black_box`, `Criterion`, benchmark groups with
//! `throughput`/`sample_size`/`bench_function`/`finish`, `Bencher::iter`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros — with a
//! simple calibrated wall-clock timer and a plain-text report. There is no
//! statistical analysis, HTML output, or baseline comparison.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// bodies. Same contract as `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration payload size, used to annotate the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            sample_size: 20,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut g = self.benchmark_group(name.clone());
        g.bench_function(name, f);
        g.finish();
        self
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Annotates per-iteration payload for the report.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets how many timed samples to take (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Times `f` and prints one report line.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // Calibration pass: find an iteration count that runs ~5ms.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 24 {
                break;
            }
            iters = iters.saturating_mul(4);
        }
        // Timed samples; keep the best (least-noise) per-iteration time.
        let mut best = f64::INFINITY;
        let mut worst = 0.0f64;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            let per_iter = b.elapsed.as_secs_f64() / iters as f64;
            best = best.min(per_iter);
            worst = worst.max(per_iter);
        }
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 / best)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.0} B/s", n as f64 / best)
            }
            None => String::new(),
        };
        println!(
            "{}/{:<32} best {}  worst {}{}",
            self.name,
            id,
            format_time(best),
            format_time(worst),
            rate
        );
        self
    }

    /// Ends the group (report lines are printed eagerly; this is a no-op
    /// kept for API compatibility).
    pub fn finish(&mut self) {}
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:>8.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:>8.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:>8.2} ms", secs * 1e3)
    } else {
        format!("{secs:>8.2} s ")
    }
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the calibrated number of iterations, timing the batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group: a function running each listed target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
