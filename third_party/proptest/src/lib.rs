//! Offline drop-in subset of the [proptest](https://crates.io/crates/proptest)
//! API.
//!
//! The container this repository grows in has no network access, so the real
//! proptest crate cannot be fetched. This shim implements the subset of the
//! API the workspace's property tests use — `proptest!`, `prop_assert*!`,
//! `prop_assume!`, `prop_oneof!`, `Just`, `any`, range/tuple strategies,
//! `prop_map`, and `proptest::collection::{vec, btree_set}` — backed by a
//! deterministic SplitMix64 sampler. There is **no shrinking**: a failing
//! case reports the exact generated inputs instead.
//!
//! Determinism: each test derives its RNG seed from the test's module path,
//! name, and case index, so failures are reproducible run-to-run. Set
//! `PROPTEST_CASES` to override the number of cases per test.

use std::cell::Cell;
use std::fmt::Debug;
use std::ops::Range;

/// Default number of cases per property when neither `PROPTEST_CASES` nor a
/// `proptest_config` override is present.
pub const DEFAULT_CASES: u32 = 64;

// --- RNG -------------------------------------------------------------------

/// Deterministic SplitMix64 generator used to sample strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG for one test case, seeded from the test identity.
    pub fn for_case(test_id: &str, case: u64) -> Self {
        // FNV-1a over the test id, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_id.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded sampling; bias is negligible for tests.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// --- Strategy core ---------------------------------------------------------

/// A value generator. Mirrors proptest's `Strategy` trait, minus shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Boxes a strategy (used by `prop_oneof!` to unify branch types).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!` backing type).
pub struct OneOf<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Debug for OneOf<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OneOf({} options)", self.options.len())
    }
}

impl<V> OneOf<V> {
    /// Builds from a non-empty list of boxed strategies.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// --- Primitive strategies --------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy over a type's whole domain.
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// --- Collections -----------------------------------------------------------

/// Collection length specification: a fixed size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::*;
    use std::collections::BTreeSet;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size drawn from
    /// `size`. Small element domains may yield fewer elements than
    /// requested (duplicates are discarded, as in proptest).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + if span == 0 { 0 } else { rng.below(span) as usize };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let target = self.size.min + if span == 0 { 0 } else { rng.below(span) as usize };
            let mut out = BTreeSet::new();
            // Duplicates shrink the set; cap the attempts so tiny element
            // domains still terminate.
            for _ in 0..(target.max(1) * 64) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

// --- Config and runner plumbing --------------------------------------------

/// Per-`proptest!` block configuration (subset of proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Resolves the case count: `PROPTEST_CASES` env var wins over the config.
pub fn resolve_cases(cfg: &ProptestConfig) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(cfg.cases)
}

thread_local! {
    static ASSUME_REJECTED: Cell<bool> = const { Cell::new(false) };
}

/// Marks the current case as rejected by `prop_assume!` (internal).
pub fn mark_assume_rejected() {
    ASSUME_REJECTED.with(|c| c.set(true));
}

/// Clears and returns the rejection flag (internal).
pub fn take_assume_rejected() -> bool {
    ASSUME_REJECTED.with(|c| c.replace(false))
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestRng,
    };
}

// --- Macros ----------------------------------------------------------------

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `fn name(arg in strategy, ...) { body }` items with attributes.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal item expander for [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __cases = $crate::resolve_cases(&__config);
            let __test_id = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__cases as u64 {
                let mut __rng = $crate::TestRng::for_case(__test_id, __case);
                let mut __inputs: ::std::string::String = ::std::string::String::new();
                let __result: ::std::result::Result<(), ::std::string::String> = {
                    $(
                        let __value = $crate::Strategy::generate(&($strat), &mut __rng);
                        __inputs.push_str(&format!(
                            "\n  {} = {:?}",
                            stringify!($pat),
                            __value
                        ));
                        let $pat = __value;
                    )+
                    #[allow(unused_mut)]
                    let mut __run = || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    __run()
                };
                let _ = $crate::take_assume_rejected();
                if let ::std::result::Result::Err(__msg) = __result {
                    panic!(
                        "proptest case {}/{} for `{}` failed: {}\ninputs:{}",
                        __case + 1,
                        __cases,
                        __test_id,
                        __msg,
                        __inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}; {})",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+)
            ));
        }
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left), stringify!($right), l
            ));
        }
    }};
}

/// Skips the current case (counts as passed) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            $crate::mark_assume_rejected();
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -5i64..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            Just(1u32),
            (10u32..20).prop_map(|x| x * 2),
        ]) {
            prop_assert!(v == 1 || (20..40).contains(&v));
        }

        #[test]
        fn assume_skips(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case("t", 0);
        let mut b = TestRng::for_case("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn btree_set_terminates_on_tiny_domain() {
        let s = crate::collection::btree_set(0u8..4, 1..4);
        let mut rng = TestRng::for_case("set", 0);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 4);
        }
    }
}
